// Command experiments regenerates the paper's tables and figures from the
// simulation substrates and prints them in the paper's layout, together
// with shape checks (who wins, does the gain grow with communication
// intensity, ...).
//
// Usage:
//
//	experiments -exp all            # everything (minutes)
//	experiments -exp table3         # one experiment
//	experiments -exp fig8 -patterns all
//	experiments -jobs 200           # reduced scale
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/profiling"
	"repro/internal/txtplot"
	"repro/internal/workload"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment: fig1, table3, fig6, table4, fig7, fig8, fig9, future, anneal or all (anneal — the quality-vs-budget sweep behind the CI quality gate — only runs when asked for by name; it is not part of the paper's evaluation)")
		jobs     = flag.Int("jobs", 1000, "jobs per continuous trace")
		indJobs  = flag.Int("individual-jobs", 200, "jobs sampled for individual runs")
		seed     = flag.Int64("seed", 1, "random seed")
		comm     = flag.Float64("comm", 0.9, "fraction of communication-intensive jobs")
		share    = flag.Float64("commshare", 0.7, "communication share of a comm job's runtime")
		machines = flag.String("machines", "Intrepid,Theta,Mira", "comma-separated machine presets")
		patterns = flag.String("patterns", "binomial", "fig8 patterns: one of rd,rhvd,binomial or 'all'")
		check    = flag.Bool("check", true, "verify the paper's qualitative claims and report violations")
		costmode = flag.String("costmode", "effective-hops", "cost function: effective-hops (literal Eq. 6), hop-bytes (msize-weighted), distance-only")
		plot     = flag.Bool("plot", false, "render ASCII charts alongside the tables (fig1, fig6, fig9)")
		parallel = flag.Int("parallel", 0, "concurrent simulation runs (0 = GOMAXPROCS, 1 = sequential)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	err = run(*exp, *jobs, *indJobs, *seed, *comm, *share, *machines, *patterns, *check, *costmode, *plot, *parallel)
	if serr := stop(); err == nil {
		err = serr
	}
	if merr := profiling.WriteHeap(*memProf); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(exp string, jobs, indJobs int, seed int64, comm, share float64,
	machines, patterns string, check bool, costmode string, plot bool, parallel int) error {
	mode, err := costmodel.ParseMode(costmode)
	if err != nil {
		return err
	}
	var presets []workload.Preset
	for _, name := range strings.Split(machines, ",") {
		p, err := workload.PresetByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		presets = append(presets, p)
	}
	o := experiments.Options{
		Jobs: jobs, IndividualJobs: indJobs, Seed: seed,
		CommFraction: comm, CommShare: share, Machines: presets,
		CostMode: mode, Parallelism: parallel,
	}
	report := func(name string, issues []string) {
		if !check {
			return
		}
		if len(issues) == 0 {
			fmt.Printf("[check] %s: shape reproduced\n\n", name)
			return
		}
		fmt.Printf("[check] %s: %d violation(s):\n", name, len(issues))
		for _, s := range issues {
			fmt.Println("  -", s)
		}
		fmt.Println()
	}
	want := func(name string) bool { return exp == "all" || exp == name }
	start := time.Now()

	if want("fig1") {
		res, err := experiments.Figure1(experiments.Figure1Options{})
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		// The paper measured TCP on Ethernet; rerun with the incast model
		// to show the multi-x spike magnitudes that implies.
		incast, err := experiments.Figure1(experiments.Figure1Options{IncastPenalty: 0.3})
		if err != nil {
			return err
		}
		fmt.Printf("with TCP-incast model (penalty 0.3): during-J2 mean x%.2f of baseline"+"\n\n",
			incast.DuringMean/incast.BaselineMean)
		if plot {
			if err := txtplot.Series(os.Stdout, "J1 iteration time over wall clock (J2 bursts visible as plateaus)",
				res.IterEnds, res.IterTimes, 72, 10); err != nil {
				return err
			}
			fmt.Println()
		}
		report("fig1", res.Check())
	}
	if want("table3") {
		res, err := experiments.Table3(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		report("table3", res.Check())
	}
	if want("fig6") {
		res, err := experiments.Figure6(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		if plot {
			labels := []string{}
			series := map[string][]float64{"greedy": {}, "balanced": {}, "adaptive": {}}
			for _, p := range res.Points {
				labels = append(labels, p.Machine+"/"+p.Set)
				series["greedy"] = append(series["greedy"], p.ReductionPct[core.Greedy])
				series["balanced"] = append(series["balanced"], p.ReductionPct[core.Balanced])
				series["adaptive"] = append(series["adaptive"], p.ReductionPct[core.Adaptive])
			}
			if err := txtplot.GroupedBars(os.Stdout, "% execution-time reduction vs default",
				labels, series, []string{"greedy", "balanced", "adaptive"}, 40); err != nil {
				return err
			}
			fmt.Println()
		}
		report("fig6", res.Check())
	}
	if want("table4") {
		res, err := experiments.Table4(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		report("table4", res.Check())
	}
	if want("fig7") {
		res, err := experiments.Figure7(o)
		if err != nil {
			return err
		}
		cont, ind := res.MaxReductionPct()
		fmt.Printf("Figure 7: %d jobs; max per-job exec reduction: continuous %.1f%%, individual %.1f%%\n",
			len(res.JobIDs), cont, ind)
		if exp == "fig7" { // the full series only when asked for explicitly
			fmt.Println(res.Format())
		}
		fmt.Println()
	}
	if want("fig8") {
		pats := []collective.Pattern{collective.Binomial}
		if patterns == "all" {
			pats = []collective.Pattern{collective.RD, collective.RHVD, collective.Binomial}
		} else if patterns != "" && patterns != "binomial" {
			p, err := collective.ParsePattern(patterns)
			if err != nil {
				return err
			}
			pats = []collective.Pattern{p}
		}
		for _, p := range pats {
			res, err := experiments.Figure8(o, p)
			if err != nil {
				return err
			}
			fmt.Println(res.Format())
			report(fmt.Sprintf("fig8/%v", p), res.Check())
		}
	}
	if want("fig9") {
		res, err := experiments.Figure9(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		if plot {
			labels := []string{}
			series := map[string][]float64{"default": {}, "greedy": {}, "balanced": {}, "adaptive": {}}
			for _, p := range res.Points {
				labels = append(labels, fmt.Sprintf("%d%% comm", p.CommPct))
				for _, alg := range []core.Algorithm{core.Default, core.Greedy, core.Balanced, core.Adaptive} {
					series[alg.String()] = append(series[alg.String()], p.AvgTurnaroundHours[alg])
				}
			}
			if err := txtplot.GroupedBars(os.Stdout, "avg turnaround (hours)",
				labels, series, []string{"default", "greedy", "balanced", "adaptive"}, 40); err != nil {
				return err
			}
			fmt.Println()
		}
		report("fig9", res.Check())
	}
	// The anneal quality sweep is repo tooling (it feeds the CI quality
	// gate), not part of the paper's evaluation, so "all" skips it.
	if exp == "anneal" {
		res, err := experiments.AnnealQuality(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		report("anneal", res.Check())
	}
	if want("future") {
		res, err := experiments.FutureWork(o)
		if err != nil {
			return err
		}
		fmt.Println(res.Format())
		report("future", res.Check())
	}
	fmt.Printf("total: %.1fs\n", time.Since(start).Seconds())
	return nil
}
