package main

import "testing"

func TestRunQuickExperiments(t *testing.T) {
	// Each experiment at test scale; fig1 is independent of the size knobs.
	for _, exp := range []string{"fig1", "table3", "table4", "future"} {
		if err := run(exp, 60, 15, 1, 0.9, 0.7, "Theta", "binomial",
			true, "effective-hops", exp == "fig1", 0); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("table3", 30, 10, 1, 0.9, 0.7, "Nope", "binomial", false, "effective-hops", false, 0); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("table3", 30, 10, 1, 0.9, 0.7, "Theta", "binomial", false, "frob", false, 0); err == nil {
		t.Error("unknown cost mode accepted")
	}
	if err := run("fig8", 30, 10, 1, 0.9, 0.7, "Theta", "frob", false, "effective-hops", false, 0); err == nil {
		t.Error("unknown pattern accepted")
	}
}
