// Command cawsched runs the communication-aware scheduler simulator over a
// job trace and reports the paper's evaluation metrics.
//
// Usage:
//
//	cawsched [flags]
//
// Examples:
//
//	# Compare all four algorithms on a synthetic Theta trace.
//	cawsched -machine Theta -jobs 1000 -comm 0.9 -pattern RHVD -compare
//
//	# Run one algorithm on a real SWF log over a custom topology.conf.
//	cawsched -topology cluster.conf -log intrepid.swf -alg balanced -pattern RD
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/export"
	"repro/internal/faults"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	var (
		machine   = flag.String("machine", "Theta", "machine preset: Intrepid, Theta or Mira (ignored with -topology)")
		topoPath  = flag.String("topology", "", "SLURM topology.conf file (overrides -machine)")
		logPath   = flag.String("log", "", "SWF job log (default: synthesize from the machine preset)")
		jobs      = flag.Int("jobs", 1000, "number of jobs (synthetic trace or SWF prefix)")
		seed      = flag.Int64("seed", 1, "random seed for synthesis and tagging")
		algName   = flag.String("alg", "adaptive", "allocation algorithm: default, greedy, balanced, adaptive, balanced-nopow2, anneal")
		annBudget = flag.Int("anneal-budget", 0, "anneal: evaluated-candidates budget (0 = default 256, negative = seed passthrough)")
		annSeed   = flag.Uint64("anneal-seed", 0, "anneal: PRNG seed (0 = default 1)")
		patName   = flag.String("pattern", "RHVD", "collective pattern of comm-intensive jobs: RD, RHVD, Binomial, Ring")
		commFrac  = flag.Float64("comm", 0.9, "fraction of jobs tagged communication-intensive")
		commShare = flag.Float64("commshare", 0.7, "fraction of a comm job's runtime spent communicating")
		compare   = flag.Bool("compare", false, "run all four algorithms and print a comparison")
		noBF      = flag.Bool("nobackfill", false, "disable EASY backfilling (strict FIFO)")
		remap     = flag.Bool("remap", false, "enable post-allocation rank remapping (process mapping)")
		policy    = flag.String("policy", "fifo", "queue policy: fifo, sjf, widest")
		perJob    = flag.Bool("perjob", false, "print per-job results")
		csvPath   = flag.String("csv", "", "write per-job results of the last run as CSV to this file")
		jsonPath  = flag.String("json", "", "write the algorithm comparison as JSON to this file")
		validate  = flag.Bool("validate", true, "self-audit every run (capacity, ordering, backfill legality, Eq. 7)")
		mtbf      = flag.Float64("mtbf", 0, "per-node mean time between failures in seconds (0 disables fault injection)")
		mttr      = flag.Float64("mttr", 3600, "per-node mean time to repair in seconds")
		drainFrac = flag.Float64("drainfrac", 0.25, "fraction of outages that are graceful drains instead of hard failures")
		faultSeed = flag.Int64("faultseed", 1, "seed for the fault-injection model")
	)
	flag.Parse()
	fm := faults.Model{MTBF: *mtbf, MTTR: *mttr, DrainFraction: *drainFrac, Seed: *faultSeed}
	if err := run(*machine, *topoPath, *logPath, *jobs, *seed, *algName, *patName, *policy,
		*commFrac, *commShare, *compare, *noBF, *remap, *perJob, *validate, *csvPath, *jsonPath,
		*annBudget, *annSeed, fm); err != nil {
		fmt.Fprintln(os.Stderr, "cawsched:", err)
		os.Exit(1)
	}
}

func run(machine, topoPath, logPath string, jobs int, seed int64, algName, patName, policyName string,
	commFrac, commShare float64, compare, noBF, remap, perJob, validate bool, csvPath, jsonPath string,
	annealBudget int, annealSeed uint64, fm faults.Model) error {
	pattern, err := collective.ParsePattern(patName)
	if err != nil {
		return err
	}
	policy, err := sim.ParsePolicy(policyName)
	if err != nil {
		return err
	}

	var topo *topology.Topology
	preset, presetErr := workload.PresetByName(machine)
	if topoPath != "" {
		if topo, err = topology.LoadConfig(topoPath); err != nil {
			return err
		}
	} else {
		if presetErr != nil {
			return presetErr
		}
		topo = preset.NewTopology()
	}

	var trace workload.Trace
	if logPath != "" {
		log, err := swf.Load(logPath)
		if err != nil {
			return err
		}
		trace = workload.FromSWF(log, logPath, topo.NumNodes(), jobs)
		if len(trace.Jobs) == 0 {
			return fmt.Errorf("no usable jobs in %s", logPath)
		}
	} else {
		if presetErr != nil {
			return presetErr
		}
		trace = preset.Synthesize(jobs, seed)
	}
	trace, err = trace.Tag(commFrac, collective.SinglePattern(pattern, commShare), seed+17)
	if err != nil {
		return err
	}
	st := trace.ComputeStats()
	fmt.Printf("trace: %s — %d jobs, %d..%d nodes, %d comm-intensive, machine %d nodes\n",
		trace.Name, st.Jobs, st.MinNodes, st.MaxNodes, st.CommJobs, topo.NumNodes())

	var ftrace faults.Trace
	if fm.MTBF > 0 {
		// Cover the submit span plus the time a perfectly packed machine
		// would need to drain the queue, so outages can hit late jobs too.
		horizon := st.SpanSec + st.TotalNodeSec/float64(topo.NumNodes())
		ftrace = fm.Generate(topo.NumNodes(), horizon)
		fmt.Printf("faults: MTBF %.0fs, MTTR %.0fs, drain %.0f%% — %d events over %.1fh\n",
			fm.MTBF, fm.MTTR, fm.DrainFraction*100, len(ftrace), horizon/3600)
	}

	algs := []core.Algorithm{}
	if compare {
		algs = append(algs, core.Algorithms...)
	} else {
		a, err := core.ParseAlgorithm(algName)
		if err != nil {
			return err
		}
		algs = append(algs, a)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	if len(ftrace) > 0 {
		fmt.Fprintln(w, "algorithm\texec(h)\twait(h)\tavg TAT(h)\tnode-hours\tavg comm cost\tmakespan(h)\trequeues\tlost(nh)")
	} else {
		fmt.Fprintln(w, "algorithm\texec(h)\twait(h)\tavg TAT(h)\tnode-hours\tavg comm cost\tmakespan(h)")
	}
	var results []*sim.Result
	for _, alg := range algs {
		cfg := sim.Config{
			Topology: topo, Algorithm: alg, DisableBackfill: noBF, RankRemap: remap,
			Policy: policy, Faults: ftrace,
			AnnealBudget: annealBudget, AnnealSeed: annealSeed,
		}
		var res *sim.Result
		if validate {
			res, err = sim.RunContinuousValidated(cfg, trace)
		} else {
			res, err = sim.RunContinuous(cfg, trace)
		}
		if err != nil {
			return err
		}
		results = append(results, res)
		s := res.Summary
		if len(ftrace) > 0 {
			fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%.2f\t%.0f\t%.2f\t%.1f\t%d\t%.1f\n",
				alg, s.TotalExecHours, s.TotalWaitHours, s.AvgTurnaroundHours,
				s.TotalNodeHours, s.AvgCommCost, s.MakespanHours,
				s.Requeues, s.LostNodeHours)
		} else {
			fmt.Fprintf(w, "%v\t%.1f\t%.1f\t%.2f\t%.0f\t%.2f\t%.1f\n",
				alg, s.TotalExecHours, s.TotalWaitHours, s.AvgTurnaroundHours,
				s.TotalNodeHours, s.AvgCommCost, s.MakespanHours)
		}
	}
	if err := w.Flush(); err != nil {
		return err
	}
	if compare && len(results) > 1 {
		base := results[0].Summary
		fmt.Println()
		for _, res := range results[1:] {
			fmt.Printf("%v vs default: exec %+.2f%%, wait %+.2f%%, turnaround %+.2f%%\n",
				res.Algorithm,
				metrics.ImprovementPct(base.TotalExecHours, res.Summary.TotalExecHours),
				metrics.ImprovementPct(base.TotalWaitHours, res.Summary.TotalWaitHours),
				metrics.ImprovementPct(base.AvgTurnaroundHours, res.Summary.AvgTurnaroundHours))
		}
	}
	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		if err := export.JobsCSV(f, results[len(results)-1]); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		f, err := os.Create(jsonPath)
		if err != nil {
			return err
		}
		if err := export.ComparisonJSON(f, results); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if perJob {
		fmt.Println()
		pw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(pw, "job\tnodes\tclass\tsubmit\tstart\texec\tratio\tcost")
		for _, jr := range results[len(results)-1].Jobs {
			class := "compute"
			if jr.Comm {
				class = "comm"
			}
			fmt.Fprintf(pw, "%d\t%d\t%s\t%.0f\t%.0f\t%.0f\t%.3f\t%.1f\n",
				jr.ID, jr.Nodes, class, jr.Submit, jr.Start, jr.Exec, jr.CostRatio, jr.CommCost)
		}
		if err := pw.Flush(); err != nil {
			return err
		}
	}
	return nil
}
