package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/faults"
)

func TestRunCompareWithExports(t *testing.T) {
	dir := t.TempDir()
	csvPath := filepath.Join(dir, "jobs.csv")
	jsonPath := filepath.Join(dir, "cmp.json")
	err := run("Theta", "", "", 40, 1, "adaptive", "RHVD", "fifo",
		0.9, 0.7, true, false, false, false, true, csvPath, jsonPath, 0, 0, faults.Model{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{csvPath, jsonPath} {
		info, err := os.Stat(p)
		if err != nil || info.Size() == 0 {
			t.Fatalf("export %s missing or empty: %v", p, err)
		}
	}
}

func TestRunSingleAlgorithmPerJob(t *testing.T) {
	if err := run("Mira", "", "", 20, 2, "balanced", "RD", "sjf",
		0.5, 0.6, false, true, true, true, true, "", "", 0, 0, faults.Model{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithFaultInjection(t *testing.T) {
	fm := faults.Model{MTBF: 5e5, MTTR: 3e3, DrainFraction: 0.25, Seed: 7}
	if err := run("Theta", "", "", 60, 3, "adaptive", "RHVD", "fifo",
		0.9, 0.7, false, false, false, false, true, "", "", 0, 0, fm); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithTopologyAndSWF(t *testing.T) {
	dir := t.TempDir()
	topoPath := filepath.Join(dir, "topology.conf")
	conf := "SwitchName=s0 Nodes=n[0-31]\nSwitchName=s1 Nodes=n[32-63]\nSwitchName=s2 Switches=s[0-1]\n"
	if err := os.WriteFile(topoPath, []byte(conf), 0o644); err != nil {
		t.Fatal(err)
	}
	swfPath := filepath.Join(dir, "log.swf")
	swfContent := "1 0 -1 600 8 -1 -1 8 1200 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"2 60 -1 300 16 -1 -1 16 900 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if err := os.WriteFile(swfPath, []byte(swfContent), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run("", topoPath, swfPath, 0, 1, "greedy", "Binomial", "fifo",
		1.0, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"bad machine", run("Nope", "", "", 10, 1, "adaptive", "RD", "fifo", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"bad algorithm", run("Theta", "", "", 10, 1, "frob", "RD", "fifo", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"bad pattern", run("Theta", "", "", 10, 1, "adaptive", "frob", "fifo", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"bad policy", run("Theta", "", "", 10, 1, "adaptive", "RD", "frob", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"bad fraction", run("Theta", "", "", 10, 1, "adaptive", "RD", "fifo", 1.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"missing topology", run("", "/nonexistent/topo.conf", "", 10, 1, "adaptive", "RD", "fifo", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
		{"missing log", run("Theta", "", "/nonexistent/log.swf", 10, 1, "adaptive", "RD", "fifo", 0.9, 0.7, false, false, false, false, true, "", "", 0, 0, faults.Model{})},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}
