// Command loggen synthesizes job traces matching the paper's evaluation
// machines and writes them in Standard Workload Format, so they can be fed
// back to cawsched -log or to any other SWF consumer.
//
// Usage:
//
//	loggen -machine Mira -jobs 1000 -seed 7 > mira.swf
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/workload"
)

func main() {
	var (
		machine = flag.String("machine", "Theta", "machine preset: Intrepid, Theta or Mira")
		jobs    = flag.Int("jobs", 1000, "number of jobs")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (default stdout)")
		stats   = flag.Bool("stats", false, "print trace statistics to stderr")
	)
	flag.Parse()
	if err := run(*machine, *jobs, *seed, *out, *stats); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run(machine string, jobs int, seed int64, out string, stats bool) error {
	preset, err := workload.PresetByName(machine)
	if err != nil {
		return err
	}
	trace := preset.Synthesize(jobs, seed)
	if stats {
		s := trace.ComputeStats()
		fmt.Fprintf(os.Stderr, "%s: %d jobs, %d..%d nodes, %.1f%% power-of-two, span %.1fh, %.0f node-hours\n",
			trace.Name, s.Jobs, s.MinNodes, s.MaxNodes,
			100*float64(s.Pow2Jobs)/float64(max(s.Jobs, 1)),
			s.SpanSec/3600, s.TotalNodeSec/3600)
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return trace.ToSWF().Write(w)
}
