package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesSWF(t *testing.T) {
	out := filepath.Join(t.TempDir(), "log.swf")
	if err := run("Mira", 25, 3, out, true); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	jobs := 0
	for _, l := range lines {
		if !strings.HasPrefix(l, ";") {
			jobs++
		}
	}
	if jobs != 25 {
		t.Fatalf("%d job lines, want 25", jobs)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("Nope", 10, 1, "", false); err == nil {
		t.Error("unknown machine accepted")
	}
	if err := run("Theta", 10, 1, "/nonexistent/dir/x.swf", false); err == nil {
		t.Error("unwritable output accepted")
	}
}
