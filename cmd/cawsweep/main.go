// Command cawsweep runs full parameter grids over the scheduler simulator
// and emits CSV for plotting — a generalisation of the paper's individual
// experiments for sensitivity studies.
//
// Usage:
//
//	cawsweep -machines Theta -patterns rd,rhvd -comm 0.3,0.6,0.9 \
//	         -commshare 0.3,0.5,0.7 -jobs 500 -o sweep.csv
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/profiling"
	"repro/internal/sim"
	"repro/internal/sweep"
	"repro/internal/workload"
)

func main() {
	var (
		machines  = flag.String("machines", "Theta", "comma-separated machine presets")
		patterns  = flag.String("patterns", "rhvd", "comma-separated patterns (rd,rhvd,binomial,ring,stencil)")
		comm      = flag.String("comm", "0.9", "comma-separated comm-intensive job fractions")
		commShare = flag.String("commshare", "0.7", "comma-separated per-job communication shares")
		algs      = flag.String("algs", "default,greedy,balanced,adaptive", "comma-separated algorithms (default,greedy,balanced,adaptive,balanced-nopow2,anneal)")
		annBudget = flag.Int("anneal-budget", 0, "anneal: evaluated-candidates budget (0 = default 256, negative = seed passthrough)")
		annSeed   = flag.Uint64("anneal-seed", 0, "anneal: PRNG seed (0 = default 1)")
		jobs      = flag.Int("jobs", 500, "jobs per trace")
		seed      = flag.Int64("seed", 1, "random seed")
		costMode  = flag.String("costmode", "effective-hops", "cost function")
		policy    = flag.String("policy", "fifo", "queue policy: fifo, sjf, widest")
		parallel  = flag.Int("parallel", 0, "grid cells simulated concurrently (0 = GOMAXPROCS); output is identical at every setting")
		out       = flag.String("o", "", "output CSV file (default stdout)")
		cpuProf   = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf   = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawsweep:", err)
		os.Exit(1)
	}
	err = run(*machines, *patterns, *comm, *commShare, *algs, *jobs, *seed,
		*costMode, *policy, *parallel, *annBudget, *annSeed, *out)
	if serr := stop(); err == nil {
		err = serr
	}
	if merr := profiling.WriteHeap(*memProf); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawsweep:", err)
		os.Exit(1)
	}
}

func run(machines, patterns, comm, commShare, algs string, jobs int, seed int64,
	costMode, policy string, parallel, annealBudget int, annealSeed uint64, out string) error {
	g := sweep.Grid{Jobs: jobs, Seed: seed, Parallelism: parallel,
		AnnealBudget: annealBudget, AnnealSeed: annealSeed}
	for _, name := range strings.Split(machines, ",") {
		p, err := workload.PresetByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		g.Machines = append(g.Machines, p)
	}
	for _, name := range strings.Split(patterns, ",") {
		p, err := collective.ParsePattern(name)
		if err != nil {
			return err
		}
		g.Patterns = append(g.Patterns, p)
	}
	var err error
	if g.CommFractions, err = parseFloats(comm); err != nil {
		return err
	}
	if g.CommShares, err = parseFloats(commShare); err != nil {
		return err
	}
	for _, name := range strings.Split(algs, ",") {
		a, err := core.ParseAlgorithm(name)
		if err != nil {
			return err
		}
		g.Algorithms = append(g.Algorithms, a)
	}
	if g.CostMode, err = costmodel.ParseMode(costMode); err != nil {
		return err
	}
	if g.Policy, err = sim.ParsePolicy(policy); err != nil {
		return err
	}

	// Name the cost-evaluation path up front — "aggregated" (the default
	// subtree-aggregated heuristic), "fast" (flat leaf-pair kernel only),
	// or "reference": a sweep silently running the reference loops instead
	// of the kernel it claims to benchmark (or vice versa) would be
	// invisible in the numbers alone.
	fmt.Fprintf(os.Stderr, "cawsweep: %d runs, cost kernel: %s\n", g.Size(), costmodel.KernelPath())
	points, err := sweep.Run(g)
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return sweep.WriteCSV(w, points)
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
		if err != nil {
			return nil, fmt.Errorf("bad float %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}
