package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
		"effective-hops", "fifo", 0, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // header + 2 fractions × 2 algorithms
		t.Fatalf("%d CSV lines, want 5", len(lines))
	}
	// Every data row must carry the kernel-path column so the sweep output
	// records which cost path produced it.
	if !strings.Contains(lines[0], "cost_kernel") {
		t.Fatalf("header missing cost_kernel column: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",fast,") {
			t.Fatalf("data row missing fast kernel marker: %s", line)
		}
	}
}

// TestRunSweepParallelByteIdentical runs the identical sweep at three
// worker-pool sizes and requires byte-identical CSV files: sharding is a
// wall-clock optimisation, never an output perturbation.
func TestRunSweepParallelByteIdentical(t *testing.T) {
	var outputs [][]byte
	for _, parallel := range []int{1, 4, 0} { // 0 = GOMAXPROCS
		out := filepath.Join(t.TempDir(), "sweep.csv")
		err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
			"effective-hops", "fifo", parallel, out)
		if err != nil {
			t.Fatalf("-parallel %d: %v", parallel, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, data)
	}
	for i := 1; i < len(outputs); i++ {
		if string(outputs[i]) != string(outputs[0]) {
			t.Fatalf("sweep output differs between parallelism settings:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
}

func TestRunSweepErrors(t *testing.T) {
	cases := []error{
		run("Nope", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, ""),
		run("Theta", "frob", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, ""),
		run("Theta", "rd", "zzz", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, ""),
		run("Theta", "rd", "0.9", "0.7", "frob", 10, 1, "effective-hops", "fifo", 0, ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "frob", "fifo", 0, ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "frob", 0, ""),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
