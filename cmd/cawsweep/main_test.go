package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
		"effective-hops", "fifo", out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // header + 2 fractions × 2 algorithms
		t.Fatalf("%d CSV lines, want 5", len(lines))
	}
}

func TestRunSweepErrors(t *testing.T) {
	cases := []error{
		run("Nope", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", ""),
		run("Theta", "frob", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", ""),
		run("Theta", "rd", "zzz", "0.7", "default", 10, 1, "effective-hops", "fifo", ""),
		run("Theta", "rd", "0.9", "0.7", "frob", 10, 1, "effective-hops", "fifo", ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "frob", "fifo", ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "frob", ""),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
