package main

import (
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"testing"

	"repro/internal/costmodel"
)

func TestRunSweep(t *testing.T) {
	out := filepath.Join(t.TempDir(), "sweep.csv")
	err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
		"effective-hops", "fifo", 0, 0, 0, out)
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) != 5 { // header + 2 fractions × 2 algorithms
		t.Fatalf("%d CSV lines, want 5", len(lines))
	}
	// Every data row must carry the kernel-path column so the sweep output
	// records which cost path produced it — "aggregated", the default
	// policy with the subtree-aggregated stage armed.
	if !strings.Contains(lines[0], "cost_kernel") {
		t.Fatalf("header missing cost_kernel column: %s", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.Contains(line, ",aggregated,") {
			t.Fatalf("data row missing aggregated kernel marker: %s", line)
		}
	}
}

// TestRunSweepKernelColumnExact pins the cost_kernel column cell by cell
// at parallelism 1, 4, and NumCPU: every data row's column must equal
// costmodel.KernelPath() exactly (not merely contain it), whatever the
// worker-pool size — the column is recorded per cell by concurrent
// workers, so a torn or stale read would surface here. It also covers the
// toggled-off spelling: with aggregation disabled the same sweep must
// report "fast" in every row.
func TestRunSweepKernelColumnExact(t *testing.T) {
	kernelColumn := func(t *testing.T, parallel int, want string) {
		t.Helper()
		out := filepath.Join(t.TempDir(), "sweep.csv")
		err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
			"effective-hops", "fifo", parallel, 0, 0, out)
		if err != nil {
			t.Fatalf("-parallel %d: %v", parallel, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		lines := strings.Split(strings.TrimSpace(string(data)), "\n")
		header := strings.Split(lines[0], ",")
		col := -1
		for i, name := range header {
			if name == "cost_kernel" {
				col = i
			}
		}
		if col < 0 {
			t.Fatalf("-parallel %d: no cost_kernel column in %q", parallel, lines[0])
		}
		for _, line := range lines[1:] {
			fields := strings.Split(line, ",")
			if len(fields) <= col {
				t.Fatalf("-parallel %d: short row %q", parallel, line)
			}
			if fields[col] != want {
				t.Fatalf("-parallel %d: cost_kernel = %q, want %q (row %q)",
					parallel, fields[col], want, line)
			}
		}
	}
	t.Cleanup(func() { costmodel.SetAggregationMode(true) })
	for _, parallel := range []int{1, 4, runtime.NumCPU()} {
		if got := costmodel.KernelPath(); got != "aggregated" {
			t.Fatalf("KernelPath = %q before sweep, want \"aggregated\"", got)
		}
		kernelColumn(t, parallel, "aggregated")
		costmodel.SetAggregationMode(false)
		kernelColumn(t, parallel, "fast")
		costmodel.SetAggregationMode(true)
	}
}

// TestRunSweepParallelByteIdentical runs the identical sweep at three
// worker-pool sizes and requires byte-identical CSV files: sharding is a
// wall-clock optimisation, never an output perturbation.
func TestRunSweepParallelByteIdentical(t *testing.T) {
	var outputs [][]byte
	for _, parallel := range []int{1, 4, 0} { // 0 = GOMAXPROCS
		out := filepath.Join(t.TempDir(), "sweep.csv")
		err := run("Theta", "rd", "0.3,0.9", "0.7", "default,adaptive", 40, 1,
			"effective-hops", "fifo", parallel, 0, 0, out)
		if err != nil {
			t.Fatalf("-parallel %d: %v", parallel, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, data)
	}
	for i := 1; i < len(outputs); i++ {
		if string(outputs[i]) != string(outputs[0]) {
			t.Fatalf("sweep output differs between parallelism settings:\n%s\nvs\n%s",
				outputs[0], outputs[i])
		}
	}
}

func TestRunSweepErrors(t *testing.T) {
	cases := []error{
		run("Nope", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, 0, 0, ""),
		run("Theta", "frob", "0.9", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, 0, 0, ""),
		run("Theta", "rd", "zzz", "0.7", "default", 10, 1, "effective-hops", "fifo", 0, 0, 0, ""),
		run("Theta", "rd", "0.9", "0.7", "frob", 10, 1, "effective-hops", "fifo", 0, 0, 0, ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "frob", "fifo", 0, 0, 0, ""),
		run("Theta", "rd", "0.9", "0.7", "default", 10, 1, "effective-hops", "frob", 0, 0, 0, ""),
	}
	for i, err := range cases {
		if err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}
