package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBenchLine(t *testing.T) {
	cases := []struct {
		test   string
		line   string
		name   string
		ns     float64
		allocs float64
		ok     bool
	}{
		// Classic single-line form, with and without the Test field.
		{"", "BenchmarkJobCost/opt-8   \t  854301\t      1418 ns/op\t       0 B/op\t       0 allocs/op\n",
			"BenchmarkJobCost/opt", 1418, 0, true},
		{"BenchmarkJobCost/opt", "BenchmarkJobCost/opt-8 \t 854301\t 1418 ns/op\t 0 B/op\t 0 allocs/op\n",
			"BenchmarkJobCost/opt", 1418, 0, true},
		// test2json's split form: name only in the Test field, Output is
		// just the metrics.
		{"BenchmarkSelectAdaptive/opt", "  115776\t     10399 ns/op\t    8209 B/op\t       3 allocs/op\n",
			"BenchmarkSelectAdaptive/opt", 10399, 3, true},
		{"", "BenchmarkRunContinuous-16 \t 100 \t 6200000 ns/op\n", "BenchmarkRunContinuous", 6200000, 0, true},
		{"BenchmarkJobCost/opt", "=== RUN   BenchmarkJobCost/opt\n", "", 0, 0, false},
		{"BenchmarkJobCost/opt", "BenchmarkJobCost/opt\n", "", 0, 0, false}, // announcement, no metrics
		{"", "PASS\n", "", 0, 0, false},
		{"", "ok  \trepro/internal/core\t2.1s\n", "", 0, 0, false},
		// Non-benchmark test chatter must not parse even with numbers.
		{"TestFoo", "  123\t 456 ns/op\n", "", 0, 0, false},
	}
	for _, tc := range cases {
		name, res, ok := parseBenchLine(tc.test, tc.line)
		if ok != tc.ok {
			t.Errorf("%q: ok = %v, want %v", tc.line, ok, tc.ok)
			continue
		}
		if !ok {
			continue
		}
		if name != tc.name {
			t.Errorf("%q: name = %q, want %q", tc.line, name, tc.name)
		}
		if math.Abs(res.NsPerOp-tc.ns) > 1e-9 {
			t.Errorf("%q: ns/op = %v, want %v", tc.line, res.NsPerOp, tc.ns)
		}
		if math.Abs(res.AllocsPerOp-tc.allocs) > 1e-9 {
			t.Errorf("%q: allocs/op = %v, want %v", tc.line, res.AllocsPerOp, tc.allocs)
		}
	}
}

// writeArtifact renders benchmark lines as the `go test -json` events the
// Makefile's bench target writes.
func writeArtifact(t *testing.T, dir, name string, lines ...string) string {
	t.Helper()
	var sb strings.Builder
	sb.WriteString(`{"Action":"start","Package":"repro/internal/core"}` + "\n")
	for _, l := range lines {
		b, err := jsonOutput(l)
		if err != nil {
			t.Fatal(err)
		}
		sb.WriteString(b + "\n")
	}
	sb.WriteString(`{"Action":"pass","Package":"repro/internal/core"}` + "\n")
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func jsonOutput(line string) (string, error) {
	// Hand-rolled to keep the fixture readable; test2json escapes tabs.
	r := strings.NewReplacer("\t", `\t`)
	return `{"Action":"output","Package":"repro/internal/core","Output":"` + r.Replace(line) + `\n"}`, nil
}

func TestReportGatesOptRegressions(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeArtifact(t, dir, "old.json",
		"BenchmarkJobCost/opt-8 \t 1000 \t 1000 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkJobCost/ref-8 \t 1000 \t 10000 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkSelect/opt-8 \t 1000 \t 5000 ns/op \t 8 B/op \t 1 allocs/op",
		"BenchmarkDrift/opt-8 \t 1000 \t 2000 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkDrift/ref-8 \t 1000 \t 8000 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkTwinless/opt-8 \t 1000 \t 1000 ns/op \t 0 B/op \t 0 allocs/op",
	)
	newPath := writeArtifact(t, dir, "new.json",
		// Real regression: opt +50% while ref is flat, so the speedup
		// collapsed 10x -> 6.7x.
		"BenchmarkJobCost/opt-8 \t 1000 \t 1500 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkJobCost/ref-8 \t 1000 \t 10000 ns/op \t 0 B/op \t 0 allocs/op",
		// +10%: within threshold regardless of twins.
		"BenchmarkSelect/opt-8 \t 1000 \t 5500 ns/op \t 8 B/op \t 1 allocs/op",
		// Machine drift: opt and ref both +50%, the 4x speedup held.
		"BenchmarkDrift/opt-8 \t 1000 \t 3000 ns/op \t 0 B/op \t 0 allocs/op",
		"BenchmarkDrift/ref-8 \t 1000 \t 12000 ns/op \t 0 B/op \t 0 allocs/op",
		// +50% with no /ref twin: gates on the absolute delta.
		"BenchmarkTwinless/opt-8 \t 1000 \t 1500 ns/op \t 0 B/op \t 0 allocs/op",
		// No baseline: informational only.
		"BenchmarkNew/opt-8 \t 1000 \t 100 ns/op \t 0 B/op \t 0 allocs/op",
	)
	oldRes, err := parseFile(oldPath)
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := parseFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if got := report(&out, oldRes, newRes, 0.20, "/opt"); got != 2 {
		t.Errorf("regressions = %d, want 2 (JobCost/opt + Twinless/opt)\n%s", got, out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("report lacks REGRESSION marker:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drift") {
		t.Errorf("report lacks drift marker for BenchmarkDrift/opt:\n%s", out.String())
	}
}

func TestParseFileTakesMinOfRepeatedRuns(t *testing.T) {
	dir := t.TempDir()
	path := writeArtifact(t, dir, "rep.json",
		"BenchmarkJobCost/opt-8 \t 1000 \t 3000 ns/op \t 0 B/op \t 4 allocs/op",
		"BenchmarkJobCost/opt-8 \t 1000 \t 1000 ns/op \t 0 B/op \t 2 allocs/op",
		"BenchmarkJobCost/opt-8 \t 1000 \t 2000 ns/op \t 0 B/op \t 2 allocs/op",
	)
	res, err := parseFile(path)
	if err != nil {
		t.Fatal(err)
	}
	r := res["BenchmarkJobCost/opt"]
	if r == nil {
		t.Fatal("missing result")
	}
	if math.Abs(r.NsPerOp-1000) > 1e-9 || math.Abs(r.AllocsPerOp-2) > 1e-9 {
		t.Errorf("min = %v ns/op, %v allocs/op; want 1000, 2", r.NsPerOp, r.AllocsPerOp)
	}
}

func TestParseFileRejectsEmptyArtifact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "empty.json")
	if err := os.WriteFile(path, []byte(`{"Action":"start"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := parseFile(path); err == nil {
		t.Error("expected error for artifact without benchmark lines")
	}
}
