// Command benchcmp compares two `go test -json` benchmark artifacts (the
// committed BENCH_<date>.json files) and fails on performance regressions
// in the optimized paths.
//
// Usage:
//
//	benchcmp [-threshold 0.20] [-gate /opt] old.json new.json
//
// Every benchmark present in both files is printed with its ns/op delta;
// benchmarks whose name matches the gate substring (default "/opt", the
// fast-path halves of the opt/ref speedup pairs) exit non-zero when they
// regress by more than the threshold. Reference halves and allocation
// counts are reported but never gate: the ref paths exist for equivalence
// proofs, not speed.
//
// Absolute ns/op comparisons across artifacts recorded on different days
// see whatever the machine was doing each day; the opt/ref speedup ratio
// is measured within one run, so machine drift cancels out of it. A gated
// /opt benchmark with a /ref twin therefore only counts as regressed when
// both its absolute ns/op AND its opt-over-ref speedup degrade beyond the
// threshold — a genuinely slower fast path fails both, a slow CI box
// fails neither test that matters. Gated benchmarks without a twin gate
// on the absolute delta alone.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// benchResult is one benchmark's metrics across the artifact. Repeated
// runs (-count>1) keep the per-metric minimum: external load on a shared
// CI box only ever adds time, so the fastest run is the least-noisy
// estimate of the code's true cost (allocs/op is deterministic and the
// minimum is simply its value).
type benchResult struct {
	NsPerOp     float64
	AllocsPerOp float64
	hasAllocs   bool
}

// testEvent is the subset of test2json's event schema we consume. Test
// carries the benchmark name: test2json often splits a benchmark's name
// and its metrics into separate output events, so the Output line alone
// may hold only the numbers.
type testEvent struct {
	Action string `json:"Action"`
	Test   string `json:"Test"`
	Output string `json:"Output"`
}

func main() {
	var (
		threshold = flag.Float64("threshold", 0.20, "max allowed ns/op regression on gated benchmarks (0.20 = +20%)")
		gate      = flag.String("gate", "/opt", "substring naming the benchmarks that gate (empty gates all)")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp [-threshold F] [-gate SUBSTR] old.json new.json")
		os.Exit(2)
	}
	oldRes, err := parseFile(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	newRes, err := parseFile(flag.Arg(1))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(2)
	}
	regressions := report(os.Stdout, oldRes, newRes, *threshold, *gate)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchcmp: %d gated benchmark(s) regressed more than %.0f%%\n",
			regressions, *threshold*100)
		os.Exit(1)
	}
}

func parseFile(path string) (map[string]*benchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := make(map[string]*benchResult)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		var ev testEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		if ev.Action != "output" {
			continue
		}
		name, res, ok := parseBenchLine(ev.Test, ev.Output)
		if !ok {
			continue
		}
		if prev := out[name]; prev != nil {
			if res.NsPerOp < prev.NsPerOp {
				prev.NsPerOp = res.NsPerOp
			}
			if res.hasAllocs && (!prev.hasAllocs || res.AllocsPerOp < prev.AllocsPerOp) {
				prev.AllocsPerOp = res.AllocsPerOp
				prev.hasAllocs = true
			}
		} else {
			out[name] = &res
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("%s: no benchmark result lines", path)
	}
	return out, nil
}

// parseBenchLine parses one benchmark metrics line. Depending on how
// test2json chunked the output, the line is either the classic full form
//
//	BenchmarkName/sub-8   	 854	   1418 ns/op	       0 B/op	       0 allocs/op
//
// or just the numbers (" 854\t 1418 ns/op\t ...") with the name carried by
// the event's Test field. The name (Test field preferred, -GOMAXPROCS
// suffix stripped) and metrics are returned; announcement lines, RUN/PASS
// chatter and non-benchmark output report ok=false.
func parseBenchLine(test, line string) (string, benchResult, bool) {
	fields := strings.Fields(line)
	name := test
	if len(fields) > 0 && strings.HasPrefix(fields[0], "Benchmark") {
		if name == "" {
			name = fields[0]
		}
		fields = fields[1:]
	}
	if name == "" || !strings.HasPrefix(name, "Benchmark") || len(fields) < 3 {
		return "", benchResult{}, false
	}
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	// First field must be the iteration count, or this is a RUN/announce
	// line rather than a metrics line.
	if _, err := strconv.Atoi(fields[0]); err != nil {
		return "", benchResult{}, false
	}
	var res benchResult
	seen := false
	for i := 1; i+1 < len(fields); i += 2 {
		val, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return "", benchResult{}, false
		}
		switch fields[i+1] {
		case "ns/op":
			res.NsPerOp = val
			seen = true
		case "allocs/op":
			res.AllocsPerOp = val
			res.hasAllocs = true
		}
	}
	return name, res, seen
}

// report prints the comparison table and returns the number of gated
// regressions beyond the threshold.
func report(w io.Writer, oldRes, newRes map[string]*benchResult, threshold float64, gate string) int {
	names := make([]string, 0, len(newRes))
	for name := range newRes {
		names = append(names, name)
	}
	sort.Strings(names)
	regressions := 0
	fmt.Fprintf(w, "%-44s %14s %14s %8s\n", "benchmark", "old ns/op", "new ns/op", "delta")
	for _, name := range names {
		n := newRes[name]
		o, ok := oldRes[name]
		if !ok {
			fmt.Fprintf(w, "%-44s %14s %14.0f %8s\n", name, "-", n.NsPerOp, "new")
			continue
		}
		delta := (n.NsPerOp - o.NsPerOp) / o.NsPerOp
		mark := ""
		gated := gate == "" || strings.Contains(name, gate)
		if gated && delta > threshold {
			if speedupHeld(name, oldRes, newRes, threshold) {
				mark = "  drift (opt/ref speedup held)"
			} else {
				mark = "  REGRESSION"
				regressions++
			}
		}
		alloc := ""
		if n.hasAllocs {
			alloc = fmt.Sprintf("  (%.0f allocs)", n.AllocsPerOp)
		}
		fmt.Fprintf(w, "%-44s %14.0f %14.0f %+7.1f%%%s%s\n",
			name, o.NsPerOp, n.NsPerOp, delta*100, mark, alloc)
	}
	vanished := make([]string, 0)
	for name := range oldRes {
		if _, ok := newRes[name]; !ok {
			vanished = append(vanished, name)
		}
	}
	sort.Strings(vanished)
	for _, name := range vanished {
		fmt.Fprintf(w, "%-44s vanished from new artifact\n", name)
	}
	return regressions
}

// speedupHeld reports whether an /opt benchmark's speedup over its /ref
// twin — the machine-drift-immune signal — stayed within the threshold.
// False when there is no twin in both artifacts, so twinless benchmarks
// gate on the absolute delta.
func speedupHeld(name string, oldRes, newRes map[string]*benchResult, threshold float64) bool {
	if !strings.HasSuffix(name, "/opt") {
		return false
	}
	twin := strings.TrimSuffix(name, "/opt") + "/ref"
	oOpt, oRef, nOpt, nRef := oldRes[name], oldRes[twin], newRes[name], newRes[twin]
	if oOpt == nil || oRef == nil || nOpt == nil || nRef == nil ||
		oOpt.NsPerOp <= 0 || nOpt.NsPerOp <= 0 || oRef.NsPerOp <= 0 || nRef.NsPerOp <= 0 {
		return false
	}
	oldSpeedup := oRef.NsPerOp / oOpt.NsPerOp
	newSpeedup := nRef.NsPerOp / nOpt.NsPerOp
	return newSpeedup >= oldSpeedup*(1-threshold)
}
