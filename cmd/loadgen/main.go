// Command loadgen replays seeded, Theta-shaped bursty submission traffic
// against a scheduling daemon and reports sustained throughput and
// submit-ack latency percentiles as JSON.
//
// The trace comes from the same synthesis the simulator uses (power-of-two
// heavy sizes, lognormal runtimes, bursty diurnal arrivals), so the served
// workload is the paper's workload, not a synthetic uniform stream. Two
// modes bracket the serving architecture:
//
//	-mode seq   one frame per job, wait for each ack — the pre-batching
//	            daemon's only mode (one scheduling pass per submit)
//	-mode pipe  submit_batch frames of -batch jobs, pipelined without
//	            waiting — one scheduling pass per drained batch
//
// Usage:
//
//	loadgen -mode pipe -conns 4 -batch 64 -duration 20s          # in-process daemon
//	loadgen -addr 127.0.0.1:6817 -mode seq -duration 10s         # external daemon
//	loadgen -mode pipe -floor 2000                               # soak gate: exit 1 below floor
//
// With -addr unset, loadgen runs its own daemon + server in-process on the
// -machine topology, so a single command is a full closed-loop benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/workload"
)

type report struct {
	Mode       string  `json:"mode"`
	Machine    string  `json:"machine"`
	Conns      int     `json:"conns"`
	Batch      int     `json:"batch"`
	Seed       int64   `json:"seed"`
	TargetOps  float64 `json:"target_ops_per_sec,omitempty"`
	DurationS  float64 `json:"duration_s"`
	JobsSent   int64   `json:"jobs_sent"`
	JobsAcked  int64   `json:"jobs_acked"`
	BusyRetry  int64   `json:"busy_retries"`
	BusyDrop   int64   `json:"busy_dropped"`
	Errors     int64   `json:"errors"`
	OpsPerSec  float64 `json:"ops_per_sec"`
	AckP50Ms   float64 `json:"ack_p50_ms"`
	AckP95Ms   float64 `json:"ack_p95_ms"`
	AckP99Ms   float64 `json:"ack_p99_ms"`
	QueueDepth int     `json:"queue_depth"`
}

func main() {
	var (
		addr      = flag.String("addr", "", "daemon address (empty: run an in-process daemon)")
		machine   = flag.String("machine", "Theta", "machine preset for the trace shape (and the in-process daemon)")
		mode      = flag.String("mode", "pipe", "seq (one frame per job, wait each ack) or pipe (pipelined submit_batch frames)")
		conns     = flag.Int("conns", 4, "concurrent connections")
		batch     = flag.Int("batch", 64, "jobs per submit_batch frame (pipe mode)")
		jobs      = flag.Int("jobs", 20000, "trace length; the trace repeats if the duration outlasts it")
		duration  = flag.Duration("duration", 20*time.Second, "how long to offer load")
		ops       = flag.Float64("ops", 0, "target sustained submit ops/sec, bursty-shaped (0 = as fast as possible)")
		seed      = flag.Int64("seed", 1, "trace seed")
		timeScale = flag.Float64("timescale", 1000, "in-process daemon time compression")
		depth     = flag.Int("depth", daemon.DefaultQueueDepth, "in-process server queue depth")
		algName   = flag.String("alg", "adaptive", "in-process daemon allocation algorithm")
		floor     = flag.Float64("floor", 0, "exit nonzero if ops/sec lands below this (soak gate)")
		out       = flag.String("out", "", "write the JSON report here instead of stdout")
	)
	flag.Parse()
	if err := run(*addr, *machine, *mode, *conns, *batch, *jobs, *duration, *ops,
		*seed, *timeScale, *depth, *algName, *floor, *out); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(addr, machine, mode string, conns, batch, jobs int, duration time.Duration,
	ops float64, seed int64, timeScale float64, depth int, algName string,
	floor float64, out string) error {
	if mode != "seq" && mode != "pipe" {
		return fmt.Errorf("unknown mode %q", mode)
	}
	if conns < 1 || batch < 1 || jobs < 1 {
		return fmt.Errorf("conns, batch and jobs must be positive")
	}
	preset, err := workload.PresetByName(machine)
	if err != nil {
		return err
	}
	specs, arrivals := synthesize(preset, jobs, seed, ops)

	if addr == "" {
		alg, err := core.ParseAlgorithm(algName)
		if err != nil {
			return err
		}
		d, err := daemon.New(daemon.Config{
			Topology:  preset.NewTopology(),
			Algorithm: alg,
			TimeScale: timeScale,
		})
		if err != nil {
			return err
		}
		srv := daemon.NewServer(d)
		srv.SetQueueDepth(depth)
		if err := srv.Listen("127.0.0.1:0"); err != nil {
			return err
		}
		go srv.Serve()
		defer srv.Close()
		addr = srv.Addr().String()
	}

	frameJobs := 1
	if mode == "pipe" {
		frameJobs = batch
	}
	start := time.Now()
	deadline := start.Add(duration)
	var wg sync.WaitGroup
	workers := make([]*worker, conns)
	for w := 0; w < conns; w++ {
		workers[w] = &worker{
			addr: addr, mode: mode, frameJobs: frameJobs,
			specs: specs, arrivals: arrivals,
			first: w, stride: conns,
			start: start, deadline: deadline,
		}
		wg.Add(1)
		go workers[w].run(&wg)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()

	rep := report{
		Mode: mode, Machine: machine, Conns: conns, Batch: frameJobs,
		Seed: seed, TargetOps: ops, DurationS: elapsed, QueueDepth: depth,
	}
	var lats []float64
	for _, w := range workers {
		rep.JobsSent += w.sent
		rep.JobsAcked += w.acked
		rep.BusyRetry += w.busyRetry
		rep.BusyDrop += w.busyDrop
		rep.Errors += w.errs
		lats = append(lats, w.lat...)
	}
	if elapsed > 0 {
		rep.OpsPerSec = float64(rep.JobsAcked) / elapsed
	}
	sort.Float64s(lats)
	rep.AckP50Ms = pct(lats, 0.50)
	rep.AckP95Ms = pct(lats, 0.95)
	rep.AckP99Ms = pct(lats, 0.99)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if out != "" {
		if err := os.WriteFile(out, append(enc, '\n'), 0o644); err != nil {
			return err
		}
	} else {
		fmt.Println(string(enc))
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d transport errors", rep.Errors)
	}
	if floor > 0 && rep.OpsPerSec < floor {
		return fmt.Errorf("sustained %.0f ops/sec below floor %.0f", rep.OpsPerSec, floor)
	}
	return nil
}

// synthesize builds the seeded submit specs and (when a target rate is
// set) their send offsets: the preset's bursty arrival shape rescaled so
// the mean rate matches the target, preserving burstiness.
func synthesize(preset workload.Preset, jobs int, seed int64, ops float64) ([]daemon.SubmitSpec, []time.Duration) {
	trace := preset.Synthesize(jobs, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x10adc0de))
	patterns := []string{"RD", "RHVD", "Binomial", "Ring"}
	specs := make([]daemon.SubmitSpec, len(trace.Jobs))
	for i, j := range trace.Jobs {
		s := daemon.SubmitSpec{Nodes: j.Nodes, Runtime: j.Runtime}
		if rng.Float64() < 0.4 {
			s.Class = "comm"
			s.Pattern = patterns[rng.Intn(len(patterns))]
			s.CommShare = 0.5 + 0.4*rng.Float64()
		}
		specs[i] = s
	}
	if ops <= 0 || len(trace.Jobs) == 0 {
		return specs, nil
	}
	span := trace.Jobs[len(trace.Jobs)-1].Submit - trace.Jobs[0].Submit
	if span <= 0 {
		return specs, nil
	}
	scale := float64(len(trace.Jobs)) / span / ops // trace rate / target rate
	base := trace.Jobs[0].Submit
	arrivals := make([]time.Duration, len(trace.Jobs))
	for i, j := range trace.Jobs {
		arrivals[i] = time.Duration((j.Submit - base) * scale * float64(time.Second))
	}
	return specs, arrivals
}

// frame is one in-flight wire request and the jobs it carries.
type frame struct {
	req    daemon.Request
	jobs   int
	arrIdx int       // trace index of the first job (pacing)
	sent   time.Time // first send; busy retries keep it (latency includes backoff)
}

// worker drives one connection: a sender goroutine paces frames out and a
// receiver (run inline) matches in-order responses back to frames,
// recycling busy rejections to the sender for retry.
type worker struct {
	addr      string
	mode      string
	frameJobs int
	specs     []daemon.SubmitSpec
	arrivals  []time.Duration
	first     int
	stride    int
	start     time.Time
	deadline  time.Time

	sent      int64
	acked     int64
	busyRetry int64
	busyDrop  int64
	errs      int64
	lat       []float64
}

func (w *worker) run(wg *sync.WaitGroup) {
	defer wg.Done()
	p, err := daemon.DialPipe(w.addr)
	if err != nil {
		w.errs++
		return
	}
	defer p.Close()

	outstanding := make(chan *frame, 8192)
	resend := make(chan *frame, 8192)
	var senderDone atomic.Bool
	go w.send(p, outstanding, resend, &senderDone)

	for f := range outstanding {
		resp, err := p.Recv()
		if err != nil {
			w.errs++
			// Drain without blocking the sender's channel sends.
			for range outstanding {
			}
			return
		}
		if resp.Retryable {
			if !senderDone.Load() {
				select {
				case resend <- f:
					w.busyRetry += int64(f.jobs)
					continue
				default:
				}
			}
			w.busyDrop += int64(f.jobs)
			continue
		}
		ms := time.Since(f.sent).Seconds() * 1e3
		n := f.jobs
		if len(resp.Batch) > 0 {
			n = 0
			for _, br := range resp.Batch {
				if br.Error == "" {
					n++
				}
			}
		} else if !resp.Ok {
			n = 0
		}
		w.acked += int64(n)
		for i := 0; i < f.jobs; i++ {
			w.lat = append(w.lat, ms)
		}
	}
}

func (w *worker) send(p *daemon.Pipe, outstanding chan *frame, resend chan *frame, done *atomic.Bool) {
	defer func() {
		done.Store(true)
		p.Flush()
		close(outstanding)
	}()
	idx := w.first
	cycles := 0 // wraps around the trace, shifting pacing by a full span
	unflushed := 0
	for {
		var f *frame
		select {
		case f = <-resend:
		default:
		}
		if f == nil {
			f = w.nextFrame(&idx, &cycles)
		}
		if time.Now().After(w.deadline) {
			return
		}
		if w.arrivals != nil && f.sent.IsZero() {
			// Pace to the trace's (rescaled) burst shape.
			span := w.arrivals[len(w.arrivals)-1]
			due := w.start.Add(w.arrivals[f.arrIdx] + time.Duration(cycles)*span)
			if wait := time.Until(due); wait > 0 {
				p.Flush()
				unflushed = 0
				if time.Now().Add(wait).After(w.deadline) {
					time.Sleep(time.Until(w.deadline))
					return
				}
				time.Sleep(wait)
			}
		}
		if f.sent.IsZero() {
			f.sent = time.Now()
			w.sent += int64(f.jobs)
		}
		if err := p.Send(f.req); err != nil {
			w.errs++
			return
		}
		unflushed++
		if w.mode == "seq" || unflushed >= 16 {
			if err := p.Flush(); err != nil {
				w.errs++
				return
			}
			unflushed = 0
		}
		outstanding <- f
		if w.mode == "seq" {
			// One in flight at a time: the pre-batching client's shape.
			for len(outstanding) > 0 {
				if time.Now().After(w.deadline) {
					return
				}
				time.Sleep(20 * time.Microsecond)
			}
		}
	}
}

// nextFrame shards the trace round-robin across connections and wraps
// around (bumping the cycle counter) when the duration outlasts it.
func (w *worker) nextFrame(idx *int, cycles *int) *frame {
	n := len(w.specs)
	f := &frame{arrIdx: *idx % n}
	*cycles = *idx / n
	if w.frameJobs == 1 {
		s := w.specs[*idx%n]
		f.req = daemon.Request{Op: "submit", Nodes: s.Nodes, Runtime: s.Runtime,
			Class: s.Class, Pattern: s.Pattern, CommShare: s.CommShare}
		f.jobs = 1
		*idx += w.stride
		return f
	}
	batch := make([]daemon.SubmitSpec, 0, w.frameJobs)
	for len(batch) < w.frameJobs {
		batch = append(batch, w.specs[*idx%n])
		*idx += w.stride
	}
	f.req = daemon.Request{Op: "submit_batch", Batch: batch}
	f.jobs = len(batch)
	return f
}

func pct(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}
