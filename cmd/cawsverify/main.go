// Command cawsverify runs the simulator's differential verification sweep:
// seeded random traces through every (algorithm × cost mode × backfill ×
// policy) configuration, with per-run invariant audits, conservation
// checks and cross-configuration metamorphic properties. On the first
// violation it prints a minimal reproducer (trace seed + configuration)
// and exits non-zero, so overnight soaks reduce to one command.
//
// Usage:
//
//	# Quick sweep: 100 seeds through the full matrix.
//	cawsverify
//
//	# Overnight soak from a later seed range.
//	cawsverify -start 100000 -seeds 50000
//
//	# Replay one failing seed and print its per-cell summary table.
//	cawsverify -start 8819 -seeds 1 -matrix
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"repro/internal/profiling"
	"repro/internal/verify"
)

func main() {
	var (
		start    = flag.Int64("start", 1, "first trace seed")
		seeds    = flag.Int("seeds", 100, "number of consecutive seeds to verify")
		jobs     = flag.Int("jobs", 0, "override jobs per trace (0 = derive from seed)")
		every    = flag.Int("progress", 25, "print progress every N seeds (0 = quiet)")
		matrix   = flag.Bool("matrix", false, "also print the per-cell summary table for each seed")
		parallel = flag.Int("parallel", 0, "matrix-cell worker pool size (0 = GOMAXPROCS, 1 = sequential)")
		refSeeds = flag.Int("refseeds", 3, "seeds for the optimized-vs-reference bit-identity check (0 = skip)")
		cpuProf  = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stop, err := profiling.StartCPU(*cpuProf)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawsverify:", err)
		os.Exit(1)
	}
	err = sweep(os.Stdout, *start, *seeds, *jobs, *every, *parallel, *refSeeds, *matrix)
	if serr := stop(); err == nil {
		err = serr
	}
	if merr := profiling.WriteHeap(*memProf); err == nil {
		err = merr
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawsverify:", err)
		os.Exit(1)
	}
}

// sweep verifies `seeds` consecutive trace seeds and returns the first
// failure, whose Error() carries the reproducer line. It then proves the
// optimized fast paths bit-identical to the reference implementations over
// refSeeds seeds.
func sweep(w io.Writer, start int64, seeds, jobs, every, parallel, refSeeds int, matrix bool) error {
	if seeds <= 0 {
		return fmt.Errorf("nothing to do: -seeds %d", seeds)
	}
	for i := 0; i < seeds; i++ {
		spec := verify.DefaultSpec(start + int64(i))
		if jobs > 0 {
			spec.Jobs = jobs
		}
		if err := verify.DifferentialParallel(spec, parallel); err != nil {
			return err
		}
		if matrix {
			if err := printMatrix(w, spec); err != nil {
				return err
			}
		}
		if every > 0 && (i+1)%every == 0 {
			fmt.Fprintf(w, "cawsverify: %d/%d seeds clean (last %v)\n", i+1, seeds, spec)
		}
	}
	for i := 0; i < refSeeds; i++ {
		spec := verify.DefaultSpec(start + int64(i))
		if jobs > 0 {
			spec.Jobs = jobs
		}
		if err := verify.ReferenceEquivalence(spec, parallel); err != nil {
			return err
		}
	}
	// Specs that draw a fault schedule run the extra fault cells on top of
	// the base matrix, so report the count as a range.
	cells := fmt.Sprintf("%d(+%d fault)", len(verify.AllConfigs()), len(verify.FaultConfigs()))
	if refSeeds > 0 {
		fmt.Fprintf(w, "cawsverify: optimized vs reference schedules bit-identical over %d seeds × %s configurations\n",
			refSeeds, cells)
	}
	fmt.Fprintf(w, "cawsverify: PASS: %d seeds × %s configurations, no violations\n",
		seeds, cells)
	return nil
}

func printMatrix(w io.Writer, spec verify.TraceSpec) error {
	sums, err := verify.RunMatrix(spec)
	if err != nil {
		return err
	}
	configs := verify.ConfigsFor(spec)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "# %v\nconfig\tmakespan_h\tavg_wait_h\tnode_h\tavg_comm_cost\n", spec)
	for i, s := range sums {
		fmt.Fprintf(tw, "%v\t%.4f\t%.4f\t%.2f\t%.4f\n",
			configs[i], s.MakespanHours, s.AvgWaitHours, s.TotalNodeHours, s.AvgCommCost)
	}
	return tw.Flush()
}
