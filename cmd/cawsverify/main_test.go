package main

import (
	"strings"
	"testing"
)

func TestSweepClean(t *testing.T) {
	var out strings.Builder
	if err := sweep(&out, 1, 3, 10, 2, 0, 1, false); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "PASS: 3 seeds") {
		t.Errorf("missing pass line:\n%s", got)
	}
	if !strings.Contains(got, "2/3 seeds clean") {
		t.Errorf("missing progress line:\n%s", got)
	}
	if !strings.Contains(got, "bit-identical over 1 seeds") {
		t.Errorf("missing reference-equivalence line:\n%s", got)
	}
}

func TestSweepMatrix(t *testing.T) {
	var out strings.Builder
	if err := sweep(&out, 5, 1, 8, 0, 2, 0, true); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"config", "makespan_h", "alg=adaptive mode=effective-hops policy=fifo", "remap"} {
		if !strings.Contains(got, want) {
			t.Errorf("matrix output missing %q:\n%s", want, got)
		}
	}
}

func TestSweepRejectsEmptyRange(t *testing.T) {
	var out strings.Builder
	if err := sweep(&out, 1, 0, 0, 0, 0, 0, false); err == nil {
		t.Fatal("empty sweep did not error")
	}
}
