package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunPresets(t *testing.T) {
	dir := t.TempDir()
	for _, preset := range []string{"Theta", "Intrepid", "Mira", "IITK", "PaperExample", "Departmental"} {
		out := filepath.Join(dir, preset+".conf")
		if err := run(preset, 0, "", 0, out); err != nil {
			t.Fatalf("%s: %v", preset, err)
		}
		data, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(string(data), "SwitchName=") {
			t.Fatalf("%s output missing switches", preset)
		}
	}
}

func TestRunCustomTree(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tree.conf")
	if err := run("", 8, "4,2", 3, out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	// 8 leaves of 8 nodes, last overridden to 3: 59 nodes.
	if !strings.Contains(string(data), "# 59 nodes, 8 leaf switches, height 3") {
		t.Fatalf("header wrong:\n%s", string(data))
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("Nope", 0, "", 0, ""); err == nil {
		t.Error("unknown preset accepted")
	}
	if err := run("", 8, "x,y", 0, ""); err == nil {
		t.Error("bad fanouts accepted")
	}
	if err := run("", 0, "4", 0, ""); err == nil {
		t.Error("zero nodes-per-leaf accepted")
	}
	if err := run("Theta", 0, "", 0, "/nonexistent/dir/x.conf"); err == nil {
		t.Error("unwritable output accepted")
	}
}
