// Command topogen generates SLURM topology.conf files for regular tree and
// fat-tree clusters, including the machine presets used in the paper's
// evaluation.
//
// Usage:
//
//	topogen -preset Theta > theta.conf
//	topogen -nodes-per-leaf 16 -fanouts 8,4 > tree.conf
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/topology"
)

func main() {
	var (
		preset       = flag.String("preset", "", "machine preset: Intrepid, Theta, Mira, IITK, PaperExample, Departmental")
		nodesPerLeaf = flag.Int("nodes-per-leaf", 16, "nodes per leaf switch (custom tree)")
		fanouts      = flag.String("fanouts", "4", "comma-separated fanouts from leaf level to root (custom tree)")
		unevenLast   = flag.Int("uneven-last", 0, "override the final leaf's node count (custom tree)")
		out          = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()
	if err := run(*preset, *nodesPerLeaf, *fanouts, *unevenLast, *out); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(preset string, nodesPerLeaf int, fanouts string, unevenLast int, out string) error {
	var topo *topology.Topology
	var err error
	switch strings.ToLower(preset) {
	case "intrepid":
		topo = topology.Intrepid()
	case "theta":
		topo = topology.Theta()
	case "mira":
		topo = topology.Mira()
	case "iitk":
		topo = topology.IITK(4)
	case "paperexample":
		topo = topology.PaperExample()
	case "departmental":
		topo = topology.Departmental()
	case "":
		var fo []int
		for _, part := range strings.Split(fanouts, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad fanout %q: %v", part, err)
			}
			fo = append(fo, v)
		}
		topo, err = topology.Generate(topology.Spec{
			NodesPerLeaf: nodesPerLeaf, Fanouts: fo, UnevenLast: unevenLast,
		})
		if err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown preset %q", preset)
	}

	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	fmt.Fprintf(w, "# %d nodes, %d leaf switches, height %d\n",
		topo.NumNodes(), topo.NumLeaves(), topo.Height())
	return topo.WriteConfig(w)
}
