// Command cawsctl is the control client for cawschedd, mirroring SLURM's
// user commands:
//
//	cawsctl submit -nodes 64 -runtime 3600 -class comm -pattern RHVD   (sbatch)
//	cawsctl queue                                                      (squeue)
//	cawsctl running
//	cawsctl status -id 7
//	cawsctl info                                                       (sinfo)
//	cawsctl stats
//	cawsctl cancel -id 7                                               (scancel)
//	cawsctl drain -node n17
//	cawsctl resume -node n17
//	cawsctl fail -node n17    (hard failure: kills and requeues the job)
//	cawsctl replay -log trace.swf -speedup 1000 -comm 0.9 -pattern RHVD
//	cawsctl shutdown
//
// The daemon address defaults to 127.0.0.1:6817 and can be set with -addr
// (before the subcommand).
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"repro/internal/collective"
	"repro/internal/daemon"
	"repro/internal/swf"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:6817", "daemon address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "cawsctl: missing subcommand (submit, status, queue, running, info, stats, cancel, shutdown)")
		os.Exit(2)
	}
	if err := run(*addr, args[0], args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cawsctl:", err)
		os.Exit(1)
	}
}

func run(addr, sub string, rest []string) error {
	client, err := daemon.Dial(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	switch sub {
	case "submit":
		fs := flag.NewFlagSet("submit", flag.ExitOnError)
		nodes := fs.Int("nodes", 1, "nodes requested")
		runtime := fs.Float64("runtime", 60, "runtime in virtual seconds")
		class := fs.String("class", "compute", "comm or compute")
		pattern := fs.String("pattern", "RD", "collective pattern for comm jobs")
		share := fs.Float64("commshare", 0.7, "communication share of runtime")
		name := fs.String("name", "", "job name")
		after := fs.Int64("after", 0, "job ID this submission depends on (afterany)")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		id, err := client.Submit(daemon.Request{
			Nodes: *nodes, Runtime: *runtime, Class: *class,
			Pattern: *pattern, CommShare: *share, Name: *name, After: *after,
		})
		if err != nil {
			return err
		}
		fmt.Println(id)
		return nil

	case "status":
		fs := flag.NewFlagSet("status", flag.ExitOnError)
		id := fs.Int64("id", 0, "job id")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		ji, err := client.Status(*id)
		if err != nil {
			return err
		}
		printJobs([]daemon.JobInfo{*ji})
		return nil

	case "queue", "running":
		var jobs []daemon.JobInfo
		var err error
		if sub == "queue" {
			jobs, err = client.Queue()
		} else {
			jobs, err = client.Running()
		}
		if err != nil {
			return err
		}
		printJobs(jobs)
		return nil

	case "info":
		resp, err := client.Info()
		if err != nil {
			return err
		}
		fmt.Printf("algorithm %s, %d/%d nodes free (%d down, %d failed), virtual time %.1fs\n",
			resp.Algorithm, resp.FreeNodes, resp.MachineNodes, resp.DownNodes,
			resp.FailedNodes, resp.VirtualNow)
		w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
		fmt.Fprintln(w, "switch\tnodes\tbusy\tcomm\tratio")
		for _, l := range resp.Leafs {
			fmt.Fprintf(w, "%s\t%d\t%d\t%d\t%.3f\n", l.Switch, l.Nodes, l.Busy, l.Comm, l.Ratio)
		}
		return w.Flush()

	case "stats":
		resp, err := client.Stats()
		if err != nil {
			return err
		}
		fmt.Printf("completed %d jobs: %.2f exec hours, %.2f wait hours, avg comm cost %.2f\n",
			resp.Completed, resp.TotalExecHours, resp.TotalWaitHours, resp.AvgCommCost)
		if resp.Requeues > 0 {
			fmt.Printf("requeues %d, lost %.2f node-hours to node failures\n",
				resp.Requeues, resp.LostNodeHours)
		}
		if l := resp.Latency; l != nil {
			if l.Acks > 0 {
				fmt.Printf("submit-ack latency (wall, last %d acks): p50 %.3fms p95 %.3fms p99 %.3fms\n",
					l.Acks, l.WallP50Ms, l.WallP95Ms, l.WallP99Ms)
			}
			if l.Starts > 0 {
				fmt.Printf("queue wait (virtual, last %d starts): p50 %.1fs p95 %.1fs p99 %.1fs\n",
					l.Starts, l.WaitP50, l.WaitP95, l.WaitP99)
			}
		}
		return nil

	case "cancel":
		fs := flag.NewFlagSet("cancel", flag.ExitOnError)
		id := fs.Int64("id", 0, "job id")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return client.Cancel(*id)

	case "drain", "resume":
		fs := flag.NewFlagSet(sub, flag.ExitOnError)
		node := fs.String("node", "", "node name")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		if sub == "drain" {
			return client.Drain(*node)
		}
		return client.Resume(*node)

	case "fail":
		fs := flag.NewFlagSet("fail", flag.ExitOnError)
		node := fs.String("node", "", "node name")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		victim, err := client.Fail(*node)
		if err != nil {
			return err
		}
		if victim > 0 {
			fmt.Printf("node %s failed, job %d requeued\n", *node, victim)
		} else {
			fmt.Printf("node %s failed (idle)\n", *node)
		}
		return nil

	case "replay":
		fs := flag.NewFlagSet("replay", flag.ExitOnError)
		logPath := fs.String("log", "", "SWF job log to stream")
		speedup := fs.Float64("speedup", 1000, "trace seconds per wall second (must match the daemon's -timescale for faithful replay)")
		jobs := fs.Int("jobs", 0, "max jobs to submit (0 = all)")
		comm := fs.Float64("comm", 0.9, "fraction tagged communication-intensive")
		pattern := fs.String("pattern", "RHVD", "collective pattern for comm jobs")
		share := fs.Float64("commshare", 0.7, "communication share of runtime")
		seed := fs.Int64("seed", 1, "tagging seed")
		if err := fs.Parse(rest); err != nil {
			return err
		}
		return replay(client, *logPath, *speedup, *jobs, *comm, *pattern, *share, *seed)

	case "shutdown":
		return client.Shutdown()

	default:
		return fmt.Errorf("unknown subcommand %q", sub)
	}
}

// replay streams an SWF trace into the daemon, sleeping between
// submissions so inter-arrival gaps shrink by the speedup factor — the
// online equivalent of the simulator's continuous runs.
func replay(client *daemon.Client, logPath string, speedup float64, maxJobs int,
	commFrac float64, patternName string, share float64, seed int64) error {
	if logPath == "" {
		return fmt.Errorf("replay: -log required")
	}
	if speedup <= 0 {
		return fmt.Errorf("replay: speedup must be positive")
	}
	swfLog, err := swf.Load(logPath)
	if err != nil {
		return err
	}
	info, err := client.Info()
	if err != nil {
		return err
	}
	pattern, err := collective.ParsePattern(patternName)
	if err != nil {
		return err
	}
	trace := workload.FromSWF(swfLog, logPath, info.MachineNodes, maxJobs)
	if len(trace.Jobs) == 0 {
		return fmt.Errorf("replay: no usable jobs in %s", logPath)
	}
	trace, err = trace.Tag(commFrac, collective.SinglePattern(pattern, share), seed)
	if err != nil {
		return err
	}
	prev := 0.0
	for i, j := range trace.Jobs {
		if gap := j.Submit - prev; gap > 0 {
			time.Sleep(time.Duration(gap / speedup * float64(time.Second)))
		}
		prev = j.Submit
		req := daemon.Request{
			Nodes:   j.Nodes,
			Runtime: j.Runtime,
			Name:    fmt.Sprintf("%s#%d", logPath, j.ID),
		}
		if j.Class == daemon.ClassComm {
			req.Class = "comm"
			req.Pattern = pattern.String()
			req.CommShare = share
		} else {
			req.Class = "compute"
		}
		id, err := client.Submit(req)
		if err != nil {
			return fmt.Errorf("replay: job %d/%d: %w", i+1, len(trace.Jobs), err)
		}
		fmt.Printf("submitted %d as daemon job %d (%d nodes, %.0fs)\n",
			j.ID, id, j.Nodes, j.Runtime)
	}
	return nil
}

func printJobs(jobs []daemon.JobInfo) {
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "id\tname\tnodes\tclass\tpattern\tstate\texec\tratio\tnodelist")
	for _, j := range jobs {
		fmt.Fprintf(w, "%d\t%s\t%d\t%s\t%s\t%s\t%.0f\t%.3f\t%s\n",
			j.ID, j.Name, j.Nodes, j.Class, j.Pattern, j.State, j.Exec, j.CostRatio, j.NodeList)
	}
	w.Flush()
}
