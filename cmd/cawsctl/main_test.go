package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/topology"
)

// startTestDaemon serves an in-process daemon and returns its address.
func startTestDaemon(t *testing.T) string {
	t.Helper()
	d, err := daemon.New(daemon.Config{
		Topology:  topology.PaperExample(),
		Algorithm: core.Adaptive,
		TimeScale: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := daemon.NewServer(d)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	go srv.Serve()
	t.Cleanup(srv.Close)
	return srv.Addr().String()
}

func TestSubcommands(t *testing.T) {
	addr := startTestDaemon(t)
	steps := []struct {
		sub  string
		args []string
	}{
		{"submit", []string{"-nodes", "4", "-runtime", "600", "-class", "comm", "-pattern", "RHVD", "-name", "j1"}},
		{"submit", []string{"-nodes", "8", "-runtime", "600", "-class", "compute", "-after", "1"}},
		{"status", []string{"-id", "1"}},
		{"queue", nil},
		{"running", nil},
		{"info", nil},
		{"stats", nil},
		{"drain", []string{"-node", "n7"}},
		{"resume", []string{"-node", "n7"}},
		{"cancel", []string{"-id", "2"}},
	}
	for _, s := range steps {
		if err := run(addr, s.sub, s.args); err != nil {
			t.Fatalf("%s %v: %v", s.sub, s.args, err)
		}
	}
	if err := run(addr, "frob", nil); err == nil {
		t.Error("unknown subcommand accepted")
	}
	if err := run(addr, "cancel", []string{"-id", "999"}); err == nil {
		t.Error("cancel of unknown job accepted")
	}
	if err := run(addr, "shutdown", nil); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	if err := run("127.0.0.1:1", "info", nil); err == nil {
		t.Error("dead daemon accepted")
	}
}

func TestReplay(t *testing.T) {
	addr := startTestDaemon(t)
	client, err := daemon.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	dir := t.TempDir()
	logPath := filepath.Join(dir, "trace.swf")
	swfContent := "1 0 -1 60 2 -1 -1 2 120 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"2 1 -1 30 4 -1 -1 4 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n" +
		"3 2 -1 30 1 -1 -1 1 60 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
	if err := os.WriteFile(logPath, []byte(swfContent), 0o644); err != nil {
		t.Fatal(err)
	}
	// Speedup 1000: the 2-second trace span streams in ~2 ms.
	if err := replay(client, logPath, 1000, 0, 0.5, "RD", 0.7, 1); err != nil {
		t.Fatal(err)
	}
	stats, err := client.Stats()
	if err != nil {
		t.Fatal(err)
	}
	running, err := client.Running()
	if err != nil {
		t.Fatal(err)
	}
	queued, err := client.Queue()
	if err != nil {
		t.Fatal(err)
	}
	if got := stats.Completed + len(running) + len(queued); got != 3 {
		t.Fatalf("accounted for %d jobs, want 3", got)
	}
	// Errors.
	if err := replay(client, "", 1000, 0, 0.5, "RD", 0.7, 1); err == nil {
		t.Error("missing log accepted")
	}
	if err := replay(client, logPath, 0, 0, 0.5, "RD", 0.7, 1); err == nil {
		t.Error("zero speedup accepted")
	}
	if err := replay(client, logPath, 1000, 0, 0.5, "frob", 0.7, 1); err == nil {
		t.Error("bad pattern accepted")
	}
}
