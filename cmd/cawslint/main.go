// Command cawslint is the project's multichecker: it runs the
// internal/analysis suite — determinism, genbump, exhaustive, floatcmp,
// refparity, poolhygiene, globalmut, sharedwrite and noalloc — over the
// packages matched by its arguments (default ./...) and exits non-zero
// on any diagnostic. There is no warn-only mode; suppress a false
// positive in place with
//
//	//lint:allow <analyzer> <reason>
//
// (the reason is mandatory and an unused or unexplained suppression is
// itself a diagnostic). See DESIGN.md §8 for the invariant each analyzer
// encodes.
//
// Beyond linting, two listing modes feed other gates: -noalloc-ranges
// prints the //caws:noalloc line ranges scripts/noalloc-check.sh
// intersects with the compiler's escape diagnostics, and -suppressions
// inventories every active //lint:allow directive for review audits.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", "", "change to this directory before resolving patterns")
	timing := flag.Bool("timing", false, "print per-analyzer wall time to stderr")
	ranges := flag.Bool("noalloc-ranges", false,
		"print //caws:noalloc function and sanctioned sub-ranges instead of linting")
	suppressions := flag.Bool("suppressions", false,
		"print every //lint:allow directive in the tree instead of linting")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cawslint [-C dir] [-list] [-timing] [-noalloc-ranges] [-suppressions] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawslint:", err)
		os.Exit(2)
	}

	if *ranges {
		for _, r := range analysis.NoAllocRanges(pkgs) {
			if r.Kind == "func" {
				fmt.Printf("func %s %d %d %s\n", r.File, r.StartLine, r.EndLine, r.Func)
			} else {
				fmt.Printf("allow %s %d %d\n", r.File, r.StartLine, r.EndLine)
			}
		}
		return
	}
	if *suppressions {
		sups := analysis.Suppressions(pkgs)
		for _, s := range sups {
			fmt.Printf("%s:%d: [%s] %s\n", s.Pos.Filename, s.Pos.Line, s.Analyzer, s.Reason)
		}
		fmt.Fprintf(os.Stderr, "cawslint: %d active suppression(s)\n", len(sups))
		return
	}

	diags, timings := analysis.RunAnalyzersTimed(pkgs, suite)
	if *timing {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "cawslint: timing %-12s %s\n", t.Name, t.Elapsed)
		}
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cawslint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
