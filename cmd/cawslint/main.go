// Command cawslint is the project's multichecker: it runs the
// internal/analysis suite — determinism, genbump, exhaustive, floatcmp
// and refparity — over the packages matched by its arguments (default
// ./...) and exits non-zero on any diagnostic. There is no warn-only
// mode; suppress a false positive in place with
//
//	//lint:allow <analyzer> <reason>
//
// (the reason is mandatory and an unused or unexplained suppression is
// itself a diagnostic). See DESIGN.md §8 for the invariant each analyzer
// encodes.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	dir := flag.String("C", "", "change to this directory before resolving patterns")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(),
			"usage: cawslint [-C dir] [-list] [package patterns]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	suite := analysis.Suite()
	if *list {
		for _, a := range suite {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := analysis.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "cawslint:", err)
		os.Exit(2)
	}
	diags := analysis.RunAnalyzers(pkgs, suite)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "cawslint: %d diagnostic(s)\n", len(diags))
		os.Exit(1)
	}
}
