// Command cawschedd is the online scheduling daemon (the slurmctld
// equivalent of this reproduction): it manages a tree/fat-tree cluster,
// accepts job submissions over a JSON-lines TCP protocol and places them
// with one of the communication-aware allocation algorithms. Emulated jobs
// hold their nodes for the Eq. 7-modified runtime, compressed by the
// -timescale factor.
//
// Usage:
//
//	cawschedd -listen 127.0.0.1:6817 -machine Theta -alg adaptive -timescale 100
//	cawschedd -topology cluster.conf -alg balanced
//	cawschedd -conf /etc/slurm/slurm.conf          # SLURM-style configuration
//
// With -conf, the slurm.conf's TopologyFile, SchedulerType (backfill
// on/off), JobAwareAlgorithm and JobAwareCostMode provide the defaults;
// explicit flags still win. Interact with the daemon using cmd/cawsctl.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/daemon"
	"repro/internal/slurmconf"
	"repro/internal/topology"
	"repro/internal/workload"
)

func main() {
	var (
		listen    = flag.String("listen", "127.0.0.1:6817", "TCP listen address")
		machine   = flag.String("machine", "Theta", "machine preset: Intrepid, Theta or Mira (ignored with -topology)")
		topoPath  = flag.String("topology", "", "SLURM topology.conf (overrides -machine)")
		algName   = flag.String("alg", "adaptive", "allocation algorithm: slurm, greedy, balanced, balanced-nopow2, adaptive or anneal")
		annBudget = flag.Int("anneal-budget", 0, "anneal: evaluated-candidates budget (0 = default 256, negative = seed passthrough)")
		annSeed   = flag.Uint64("anneal-seed", 0, "anneal: PRNG seed (0 = default 1)")
		timeScale = flag.Float64("timescale", 1, "virtual seconds per wall second")
		noBF      = flag.Bool("nobackfill", false, "disable EASY backfilling")
		costMode  = flag.String("costmode", "effective-hops", "cost function: effective-hops, hop-bytes, distance-only")
		statePath = flag.String("state", "", "state file: restored at start if present, saved on shutdown (slurmctld StateSaveLocation)")
		confPath  = flag.String("conf", "", "slurm.conf providing TopologyFile/SchedulerType/JobAware* defaults")
		depth     = flag.Int("depth", daemon.DefaultQueueDepth, "per-connection pending-request queue depth (backpressure threshold)")
	)
	flag.Parse()
	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if err := run(*listen, *machine, *topoPath, *algName, *timeScale, *noBF, *costMode,
		*statePath, *confPath, *depth, *annBudget, *annSeed, explicit); err != nil {
		fmt.Fprintln(os.Stderr, "cawschedd:", err)
		os.Exit(1)
	}
}

func run(listen, machine, topoPath, algName string, timeScale float64, noBF bool,
	costMode, statePath, confPath string, depth int,
	annealBudget int, annealSeed uint64, explicit map[string]bool) error {
	var topo *topology.Topology
	var err error
	if confPath != "" {
		sc, err := slurmconf.Load(confPath)
		if err != nil {
			return err
		}
		if err := sc.Validate(); err != nil {
			return err
		}
		if !explicit["topology"] && sc.TopologyFile != "" {
			topoPath = sc.TopologyFile
		}
		if !explicit["alg"] && sc.JobAwareAlgorithm != "" {
			algName = sc.JobAwareAlgorithm
		}
		if !explicit["costmode"] && sc.JobAwareCostMode != "" {
			costMode = sc.JobAwareCostMode
		}
		if !explicit["nobackfill"] {
			noBF = !sc.Backfill()
		}
	}
	if topoPath != "" {
		topo, err = topology.LoadConfig(topoPath)
	} else {
		var preset workload.Preset
		preset, err = workload.PresetByName(machine)
		if err == nil {
			topo = preset.NewTopology()
		}
	}
	if err != nil {
		return err
	}
	alg, err := core.ParseAlgorithm(algName)
	if err != nil {
		return err
	}
	mode, err := costmodel.ParseMode(costMode)
	if err != nil {
		return err
	}
	cfg := daemon.Config{
		Topology:        topo,
		Algorithm:       alg,
		TimeScale:       timeScale,
		DisableBackfill: noBF,
		CostMode:        mode,
		AnnealBudget:    annealBudget,
		AnnealSeed:      annealSeed,
	}
	var d *daemon.Daemon
	if statePath != "" {
		if _, statErr := os.Stat(statePath); statErr == nil {
			d, err = daemon.RestoreFile(cfg, statePath)
			if err != nil {
				return fmt.Errorf("restoring %s: %w", statePath, err)
			}
			fmt.Printf("cawschedd: restored state from %s\n", statePath)
		}
	}
	if d == nil {
		d, err = daemon.New(cfg)
		if err != nil {
			return err
		}
	}
	srv := daemon.NewServer(d)
	srv.SetQueueDepth(depth)
	if err := srv.Listen(listen); err != nil {
		return err
	}
	fmt.Printf("cawschedd: %d nodes (%d leaves), algorithm %v, timescale %gx, listening on %s\n",
		topo.NumNodes(), topo.NumLeaves(), alg, timeScale, srv.Addr())

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigCh
		if statePath != "" {
			if err := d.SaveStateFile(statePath); err != nil {
				fmt.Fprintln(os.Stderr, "cawschedd: saving state:", err)
			} else {
				fmt.Println("cawschedd: state saved to", statePath)
			}
		}
		fmt.Println("cawschedd: shutting down")
		srv.Close()
	}()
	return srv.Serve()
}
