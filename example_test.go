package commsched_test

import (
	"fmt"

	commsched "repro"
)

// Example reproduces the paper's §5.3 worked numbers on the Figure 2
// fat-tree: the contention factor and effective hops for an intra-switch
// and a cross-switch node pair.
func Example() {
	topo := commsched.PaperExampleTopology()
	st := commsched.NewCluster(topo)
	// Job1 (comm) on n0,n1,n4,n5; Job2 (comm) on n2,n3 — Figure 5.
	st.Allocate(1, commsched.CommIntensive, []int{0, 1, 4, 5})
	st.Allocate(2, commsched.CommIntensive, []int{2, 3})

	fmt.Printf("C(n0,n1) = %.3f\n", commsched.Contention(st, 0, 1))
	fmt.Printf("C(n0,n4) = %.3f\n", commsched.Contention(st, 0, 4))
	fmt.Printf("Hops(n0,n1) = %.1f\n", commsched.EffectiveHops(st, 0, 1))
	fmt.Printf("Hops(n0,n4) = %.1f\n", commsched.EffectiveHops(st, 0, 4))
	// Output:
	// C(n0,n1) = 1.000
	// C(n0,n4) = 1.875
	// Hops(n0,n1) = 4.0
	// Hops(n0,n4) = 11.5
}

// ExampleNewSelector shows a single balanced placement decision.
func ExampleNewSelector() {
	topo := commsched.PaperExampleTopology()
	st := commsched.NewCluster(topo)
	st.Allocate(1, commsched.CommIntensive, []int{0, 1})

	sel, _ := commsched.NewSelector(commsched.Balanced)
	nodes, _ := sel.Select(st, commsched.Request{
		Job: 2, Nodes: 4, Class: commsched.CommIntensive, Pattern: commsched.RD,
	})
	for _, id := range nodes {
		fmt.Print(topo.NodeName(id), " ")
	}
	fmt.Println()
	// Output: n4 n5 n6 n7
}
