// Daemonclient runs the slurmctld-style scheduling daemon in-process,
// serves it on a loopback socket, and drives it through the wire client:
// submissions, queue inspection, a node drain, and completion statistics —
// the full online-scheduling workflow at 1000× time compression.
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/daemon"
	"repro/internal/topology"
)

func main() {
	d, err := daemon.New(daemon.Config{
		Topology:  topology.IITK(4), // 64 nodes, 4 leaf switches of 16
		Algorithm: core.Adaptive,
		TimeScale: 1000, // one virtual hour ≈ 3.6 wall seconds
	})
	if err != nil {
		log.Fatal(err)
	}
	srv := daemon.NewServer(d)
	if err := srv.Listen("127.0.0.1:0"); err != nil {
		log.Fatal(err)
	}
	go srv.Serve()
	defer srv.Close()
	fmt.Println("daemon listening on", srv.Addr())

	client, err := daemon.Dial(srv.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer client.Close()

	// Drain one node for "maintenance" before any submissions.
	if err := client.Drain("n0"); err != nil {
		log.Fatal(err)
	}

	// Submit a burst of jobs: communication-intensive allgathers and
	// compute fillers.
	var ids []int64
	for k := 0; k < 6; k++ {
		req := daemon.Request{
			Nodes:   8 << (k % 2), // 8 or 16 nodes
			Runtime: float64(60 + 30*k),
			Class:   "comm",
			Pattern: "RHVD",
			Name:    fmt.Sprintf("allgather-%d", k),
		}
		if k%3 == 2 {
			req.Class = "compute"
			req.Pattern = ""
			req.Name = fmt.Sprintf("solver-%d", k)
		}
		id, err := client.Submit(req)
		if err != nil {
			log.Fatal(err)
		}
		ids = append(ids, id)
	}

	running, err := client.Running()
	if err != nil {
		log.Fatal(err)
	}
	queued, err := client.Queue()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after submission: %d running, %d queued\n", len(running), len(queued))
	for _, j := range running {
		fmt.Printf("  job %d %-12s %2d nodes on %-12s ratio %.3f\n",
			j.ID, j.Name, j.Nodes, j.NodeList, j.CostRatio)
	}

	// Wait for everything to finish (virtual minutes = wall milliseconds).
	deadline := time.Now().Add(10 * time.Second)
	for {
		stats, err := client.Stats()
		if err != nil {
			log.Fatal(err)
		}
		if stats.Completed == len(ids) {
			fmt.Printf("all %d jobs completed: %.2f exec hours, %.3f wait hours, avg comm cost %.2f\n",
				stats.Completed, stats.TotalExecHours, stats.TotalWaitHours, stats.AvgCommCost)
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("jobs did not finish: %d of %d", stats.Completed, len(ids))
		}
		time.Sleep(5 * time.Millisecond)
	}

	info, err := client.Info()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster drained back to %d/%d free (%d node down for maintenance)\n",
		info.FreeNodes, info.MachineNodes, info.DownNodes)
}
