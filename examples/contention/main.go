// Contention reproduces the paper's Figure 1 motivation on the flow-level
// network simulator: J1 (8 nodes, 4 per switch) runs MPI_Allgather
// continuously on a two-switch Ethernet cluster while J2 (12 nodes, 6 per
// switch) launches periodic bursts over the same switches. J1's iteration
// time spikes whenever J2 is active.
package main

import (
	"fmt"
	"log"

	commsched "repro"
)

func main() {
	topo := commsched.DepartmentalTopology() // 50 nodes, 2 leaf switches
	// 1 Gb Ethernet everywhere: the inter-switch trunk is heavily
	// oversubscribed, as on the paper's departmental cluster.
	net := commsched.NewNetwork(topo, commsched.NetworkOptions{
		NodeBandwidth:   125e6,
		UplinkBandwidth: 125e6,
	})

	j1 := commsched.CollectiveJob{
		Name:    "J1",
		Nodes:   []int{0, 1, 2, 3, 25, 26, 27, 28},
		Pattern: commsched.RHVD, BaseBytes: 1e6, Iterations: 400,
	}
	jobs := []commsched.CollectiveJob{j1}
	// Three J2 bursts of 40 allgathers each.
	for burst := 0; burst < 3; burst++ {
		jobs = append(jobs, commsched.CollectiveJob{
			Name:    fmt.Sprintf("J2#%d", burst),
			Nodes:   []int{4, 5, 6, 7, 8, 9, 29, 30, 31, 32, 33, 34},
			Pattern: commsched.RHVD, BaseBytes: 1e6, Iterations: 40,
			Start: 8 + float64(burst)*12,
		})
	}
	timings, err := net.Run(jobs)
	if err != nil {
		log.Fatal(err)
	}
	t1 := timings[0]
	fmt.Println("J1 iteration time series (time bins of 2 s; * = J2 active):")
	binDur := 2.0
	bin := 0.0
	var sum float64
	var n int
	for k, end := range t1.IterEnds {
		sum += t1.IterTimes[k]
		n++
		if end >= bin+binDur || k == len(t1.IterEnds)-1 {
			active := ""
			for _, t2 := range timings[1:] {
				if bin < t2.End && bin+binDur > t2.Start {
					active = " *"
					break
				}
			}
			avg := sum / float64(n)
			barLen := int(avg / 0.004)
			if barLen > 60 {
				barLen = 60
			}
			bar := ""
			for i := 0; i < barLen; i++ {
				bar += "#"
			}
			fmt.Printf("t=%5.1fs  %.4fs  %s%s\n", bin, avg, bar, active)
			bin += binDur
			sum, n = 0, 0
		}
	}

	// The paper's correlation claim: contention (Eq. 2/3) tracks execution
	// time. Compare J1's mean iteration time inside and outside bursts.
	var during, outside []float64
	for k, end := range t1.IterEnds {
		in := false
		for _, t2 := range timings[1:] {
			if end > t2.Start && end <= t2.End {
				in = true
				break
			}
		}
		if in {
			during = append(during, t1.IterTimes[k])
		} else {
			outside = append(outside, t1.IterTimes[k])
		}
	}
	fmt.Printf("\nmean J1 iteration: %.4fs alone, %.4fs sharing switches with J2 (x%.2f)\n",
		mean(outside), mean(during), mean(during)/mean(outside))
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}
