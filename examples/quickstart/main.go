// Quickstart: build a cluster, tag a workload, and compare the paper's
// allocation algorithms against SLURM's default in a few lines.
package main

import (
	"fmt"
	"log"

	commsched "repro"
)

func main() {
	// A Theta-like machine: 4,392 nodes, 12 leaf switches of 366.
	topo := commsched.ThetaTopology()

	// A 500-job synthetic trace matching Theta's published workload shape,
	// with 90% of jobs tagged communication-intensive running MPI_Allgather
	// (recursive halving with vector doubling) for 70% of their runtime.
	trace := commsched.SynthesizeTrace(commsched.ThetaPreset, 500, 42)
	trace, err := trace.Tag(0.9, commsched.SingleCollective(commsched.RHVD, 0.7), 1)
	if err != nil {
		log.Fatal(err)
	}

	// Replay the trace under each algorithm from identical initial state.
	results, err := commsched.Compare(topo, trace, commsched.Algorithms)
	if err != nil {
		log.Fatal(err)
	}
	base := results[commsched.Default].Summary
	fmt.Printf("%-10s %12s %12s %14s\n", "algorithm", "exec (h)", "wait (h)", "vs default")
	for _, alg := range commsched.Algorithms {
		s := results[alg].Summary
		fmt.Printf("%-10v %12.1f %12.1f %+13.2f%%\n",
			alg, s.TotalExecHours, s.TotalWaitHours,
			commsched.ImprovementPct(base.TotalExecHours, s.TotalExecHours))
	}

	// Peek at a single placement decision: an 8-node comm job on the
	// Figure 2 example fat-tree with two busy nodes.
	small := commsched.PaperExampleTopology()
	st := commsched.NewCluster(small)
	if err := st.Allocate(1, commsched.CommIntensive, []int{0, 1}); err != nil {
		log.Fatal(err)
	}
	sel, err := commsched.NewSelector(commsched.Balanced)
	if err != nil {
		log.Fatal(err)
	}
	nodes, err := sel.Select(st, commsched.Request{
		Job: 2, Nodes: 4, Class: commsched.CommIntensive, Pattern: commsched.RD,
	})
	if err != nil {
		log.Fatal(err)
	}
	names := make([]string, len(nodes))
	for i, id := range nodes {
		names[i] = small.NodeName(id)
	}
	fmt.Printf("\nbalanced placement of a 4-node comm job with n0,n1 busy: %v\n", names)
	cost, err := commsched.AllocationCost(st, 2, commsched.CommIntensive, nodes, commsched.RD)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("estimated communication cost (Eq. 6): %.2f effective hops\n", cost)
}
