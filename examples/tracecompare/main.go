// Tracecompare exports a synthetic trace to Standard Workload Format,
// re-imports it (the round trip any real log would take), and compares the
// four allocation algorithms under both continuous and individual runs —
// the two evaluation methodologies of §5.4.
package main

import (
	"bytes"
	"fmt"
	"log"

	commsched "repro"
)

func main() {
	preset := commsched.MiraPreset
	topo := commsched.MiraTopology()

	// Synthesize a Mira-like trace and push it through SWF, as a real
	// Parallel Workloads Archive log would arrive.
	trace := commsched.SynthesizeTrace(preset, 400, 7)
	var buf bytes.Buffer
	if err := trace.ToSWF().Write(&buf); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exported %d jobs as SWF (%d bytes)\n", len(trace.Jobs), buf.Len())

	swfLog, err := commsched.ParseSWF(&buf)
	if err != nil {
		log.Fatal(err)
	}
	imported := commsched.TraceFromSWF(swfLog, "Mira", topo.NumNodes(), 0)
	imported, err = imported.Tag(0.9, commsched.SingleCollective(commsched.RD, 0.7), 3)
	if err != nil {
		log.Fatal(err)
	}

	// Continuous runs: replay the whole trace with original submit times.
	fmt.Println("\ncontinuous runs (whole trace, original submit times):")
	results, err := commsched.Compare(topo, imported, commsched.Algorithms)
	if err != nil {
		log.Fatal(err)
	}
	base := results[commsched.Default].Summary
	for _, alg := range commsched.Algorithms {
		s := results[alg].Summary
		fmt.Printf("  %-9v exec %7.1fh  wait %7.1fh  (exec %+.2f%% vs default)\n",
			alg, s.TotalExecHours, s.TotalWaitHours,
			commsched.ImprovementPct(base.TotalExecHours, s.TotalExecHours))
	}

	// Individual runs: every sampled job placed from the same partially
	// occupied cluster, one at a time, under every algorithm.
	fmt.Println("\nindividual runs (100 sampled jobs, identical 40 pct occupied cluster):")
	idx := imported.Sample(100, 11)
	ind, err := commsched.RunIndividual(commsched.IndividualConfig{
		Topology: topo, OccupiedFraction: 0.4, CommFraction: 0.5, Seed: 5,
	}, imported, idx, commsched.Algorithms)
	if err != nil {
		log.Fatal(err)
	}
	sums := map[commsched.Algorithm]float64{}
	n := 0
	for _, r := range ind {
		baseExec := r.Exec[commsched.Default]
		if baseExec <= 0 {
			continue
		}
		n++
		for _, alg := range commsched.Algorithms {
			sums[alg] += commsched.ImprovementPct(baseExec, r.Exec[alg])
		}
	}
	for _, alg := range commsched.Algorithms {
		fmt.Printf("  %-9v avg exec improvement over default: %+.2f%% (%d jobs)\n",
			alg, sums[alg]/float64(n), n)
	}
}
