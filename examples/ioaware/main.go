// Ioaware demonstrates the paper's §7 "I/O-aware scheduling" future-work
// direction as prototyped in internal/ioaware: jobs carry an I/O-intensity
// flag in addition to the communication class, leaf switches accumulate an
// I/O share, and the extended greedy selector steers both I/O- and
// communication-intensive jobs away from I/O-loaded leaves (whose uplinks
// carry the storage traffic).
package main

import (
	"fmt"
	"log"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/ioaware"
	"repro/internal/topology"
)

func main() {
	topo := topology.IITK(4) // 64 nodes, 4 leaf switches of 16
	tracker := ioaware.NewTracker(cluster.New(topo))
	sel := &ioaware.Selector{Tracker: tracker}

	place := func(id cluster.JobID, nodes int, class cluster.Class, io bool, name string) {
		req := core.Request{Job: id, Nodes: nodes, Class: class}
		chosen, err := sel.Select(req, io)
		if err != nil {
			log.Fatal(err)
		}
		if err := tracker.Allocate(id, class, io, chosen); err != nil {
			log.Fatal(err)
		}
		counts := make([]int, topo.NumLeaves())
		for _, n := range chosen {
			counts[topo.LeafOf(n)]++
		}
		fmt.Printf("%-22s -> per-leaf %v  (I/O cost %.1f)\n",
			name, counts, tracker.IOCost(chosen))
	}

	// A checkpoint-heavy application claims half of leaf 0.
	place(1, 8, cluster.ComputeIntensive, true, "checkpointer (8, I/O)")
	// A second I/O job avoids leaf 0's loaded uplink.
	place(2, 8, cluster.ComputeIntensive, true, "analytics (8, I/O)")
	// A communication-intensive solver also steers clear of the I/O leaves:
	// its collective traffic would share those uplinks.
	place(3, 16, cluster.CommIntensive, false, "solver (16, comm)")
	// A pure compute job takes the loaded leaves, preserving quiet ones.
	place(4, 8, cluster.ComputeIntensive, false, "batch (8, compute)")

	fmt.Println("\nleaf switch state:")
	for l := 0; l < topo.NumLeaves(); l++ {
		fmt.Printf("  %s: busy %2d  io %2d  comm %2d  io-share %.2f\n",
			topo.Leaves[l].Name, tracker.State().LeafBusy(l),
			tracker.LeafIO(l), tracker.State().LeafComm(l), tracker.IOShare(l))
	}
}
