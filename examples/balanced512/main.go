// Balanced512 walks through the paper's Table 2 worked example: a
// 512-node communication-intensive job allocated by the balanced algorithm
// over seven leaf switches with 160, 150, 100, 80, 70, 50 and 40 free
// nodes. The algorithm recursively halves the allocation size to the
// largest power of two each leaf can hold: 128, 128, 64, 64, 64, 32, 32.
package main

import (
	"fmt"
	"log"

	commsched "repro"
)

func main() {
	topo, err := commsched.GenerateTopology(commsched.TopologySpec{
		NodesPerLeaf: 160, Fanouts: []int{7},
	})
	if err != nil {
		log.Fatal(err)
	}
	st := commsched.NewCluster(topo)

	// Occupy nodes so the leaves have the free counts of Table 2.
	free := []int{160, 150, 100, 80, 70, 50, 40}
	var filler []int
	for l, f := range free {
		ids := topo.LeafNodes(l)
		for k := 0; k < 160-f; k++ {
			filler = append(filler, ids[k])
		}
	}
	if len(filler) > 0 {
		if err := st.Allocate(1, commsched.ComputeIntensive, filler); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Println("free nodes per leaf switch:")
	for l := range free {
		fmt.Printf("  L[%d]: %d\n", l+1, st.LeafFree(l))
	}

	for _, algName := range []commsched.Algorithm{commsched.Balanced, commsched.Greedy, commsched.Default} {
		sel, err := commsched.NewSelector(algName)
		if err != nil {
			log.Fatal(err)
		}
		nodes, err := sel.Select(st, commsched.Request{
			Job: 2, Nodes: 512, Class: commsched.CommIntensive, Pattern: commsched.RD,
		})
		if err != nil {
			log.Fatal(err)
		}
		counts := make([]int, topo.NumLeaves())
		for _, id := range nodes {
			counts[topo.LeafOf(id)]++
		}
		cost, err := commsched.AllocationCost(st, 2, commsched.CommIntensive, nodes, commsched.RD)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v allocation of 512 nodes (Eq. 6 cost %.1f):\n", algName, cost)
		for l, c := range counts {
			fmt.Printf("  L[%d]: %d\n", l+1, c)
		}
	}
	fmt.Println("\nTable 2 expects balanced = 128, 128, 64, 64, 64, 32, 32")
}
