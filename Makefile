GO ?= go
FUZZTIME ?= 15s

.PHONY: check build vet test race fuzz-smoke verify

check: vet build race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of both native fuzz targets; CI smoke, not a soak.
fuzz-smoke:
	$(GO) test ./internal/core -run FuzzAllocate -fuzz FuzzAllocate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify -run FuzzRunContinuous -fuzz FuzzRunContinuous -fuzztime $(FUZZTIME)

# Longer differential sweep (override SEEDS for overnight soaks).
SEEDS ?= 500
verify:
	$(GO) run ./cmd/cawsverify -seeds $(SEEDS)
