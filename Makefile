GO ?= go
FUZZTIME ?= 15s

.PHONY: check build vet lint lint-allow test race fuzz-smoke verify bench bench-smoke bench-compare coverage soak soak-smoke quality-compare

check: vet lint build race fuzz-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static invariants (DESIGN.md §8): the cawslint suite over the whole
# tree, the //caws:noalloc escape gate, then the pinned external linters
# (skipped gracefully offline). Any diagnostic fails the build; suppress
# false positives in place with an explained
# `//lint:allow <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/cawslint ./...
	sh scripts/noalloc-check.sh
	sh scripts/lint-extra.sh

# Inventory of every active //lint:allow escape hatch with its reason —
# the review checklist for suppression audits.
lint-allow:
	$(GO) run ./cmd/cawslint -suppressions ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short fuzz runs of the native fuzz targets; CI smoke, not a soak. The
# scheduled CI fuzz job runs the same six targets at FUZZTIME=5m.
fuzz-smoke:
	$(GO) test ./internal/core -run FuzzAllocate -fuzz FuzzAllocate -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify -run FuzzRunContinuous -fuzz FuzzRunContinuous -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify -run FuzzFaultTrace -fuzz FuzzFaultTrace -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify -run FuzzLayoutScale -fuzz FuzzLayoutScale -fuzztime $(FUZZTIME)
	$(GO) test ./internal/verify -run FuzzSubtreeAggregation -fuzz FuzzSubtreeAggregation -fuzztime $(FUZZTIME)
	$(GO) test ./internal/search -run FuzzAnnealMoves -fuzz FuzzAnnealMoves -fuzztime $(FUZZTIME)

# Statement-coverage gate: fails when total coverage over ./internal/...
# drops below the floor in scripts/coverage-floor.txt.
coverage:
	sh scripts/coverage-check.sh

# Longer differential sweep (override SEEDS for overnight soaks).
SEEDS ?= 500
verify:
	$(GO) run ./cmd/cawsverify -seeds $(SEEDS)

# Fast-path micro-benchmarks with their opt/ref speedup pairs, recorded as
# a dated JSON artifact (BENCH_<date>.json, committed for the perf PRs).
BENCHTIME ?= 1s
BENCH_PKGS = ./internal/core ./internal/costmodel ./internal/sim ./internal/cluster ./internal/sweep ./internal/daemon
# -p 1 keeps package test binaries sequential: concurrently running
# packages contaminate each other's timings.
bench:
	$(GO) test -p 1 -run '^$$' -bench 'BenchmarkSelect|BenchmarkJobCost$$|BenchmarkJobCost512Leaves|BenchmarkJobCost4096LeavesWide|BenchmarkRunContinuous$$|BenchmarkAllocateRelease|BenchmarkSweepGrid|BenchmarkDaemonSubmitThroughput' \
		-benchtime $(BENCHTIME) -benchmem -json $(BENCH_PKGS) > BENCH_$$(date +%F).json
	@echo "wrote BENCH_$$(date +%F).json"

# One iteration per benchmark: proves they still compile and run (CI).
bench-smoke:
	$(GO) test -run '^$$' -bench . -benchtime 1x $(BENCH_PKGS)

# Record a fresh dated artifact and diff it against the latest committed
# BENCH_*.json via cmd/benchcmp; >20% ns/op regression on an /opt path
# fails. Override the output name with BENCH_OUT=..., duration with
# BENCHTIME=....
bench-compare:
	BENCHTIME=$(BENCHTIME) sh scripts/bench-compare.sh $(BENCH_OUT)

# Placement-quality gate: run the deterministic anneal quality-vs-budget
# sweep and fail if the budget-256 median Eq. 6 cost regresses >2% against
# the committed scripts/quality-baseline.txt.
quality-compare:
	sh scripts/quality-compare.sh $(QUALITY_OUT)

# Closed-loop serving soak: ~20s of pipelined Theta-shaped bursty load
# against an in-process daemon, failing below the sustained ops/sec
# floor. SOAK_FLOOR is deliberately conservative (shared CI runners); a
# healthy workstation sustains two orders of magnitude more.
SOAK_FLOOR ?= 1000
soak:
	$(GO) run ./cmd/loadgen -mode pipe -conns 4 -batch 64 -duration 20s -floor $(SOAK_FLOOR)

# CI smoke variant: a few seconds, same floor semantics.
soak-smoke:
	$(GO) run ./cmd/loadgen -mode pipe -conns 2 -batch 64 -duration 3s -jobs 5000 -floor $(SOAK_FLOOR)
