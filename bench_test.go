// Benchmarks regenerating every table and figure of the paper's evaluation
// (§6), plus ablation benchmarks for the design choices called out in
// DESIGN.md. Each benchmark runs the corresponding experiment at a reduced
// but shape-preserving scale and reports the headline reproduction numbers
// as custom metrics (percent improvements, correlation), so
// `go test -bench=. -benchmem` doubles as the reproduction record.
package commsched

import (
	"testing"

	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/experiments"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workload"
)

// benchOpts keeps benchmark iterations fast while preserving the paper's
// qualitative shape. Full scale (1000 jobs, all machines) is available via
// cmd/experiments.
func benchOpts() experiments.Options {
	return experiments.Options{
		Jobs:           200,
		IndividualJobs: 50,
		Seed:           1,
		CommFraction:   0.9,
		CommShare:      0.7,
		Machines:       []workload.Preset{workload.Theta},
	}
}

// BenchmarkFigure1Contention regenerates Figure 1: two collectives sharing
// switches on the departmental cluster. Reported metrics: mean slowdown of
// J1 while J2 is active and the exec-time/contention correlation (paper:
// 0.83).
func BenchmarkFigure1Contention(b *testing.B) {
	var last *experiments.Figure1Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure1(experiments.Figure1Options{Duration: 30})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.DuringMean/last.BaselineMean, "slowdown_x")
	b.ReportMetric(last.Correlation, "correlation_r")
}

// BenchmarkTable3Continuous regenerates Table 3 (continuous runs, 90% comm
// jobs). Reported metrics: % exec and wait improvement of adaptive over
// default (RHVD row).
func BenchmarkTable3Continuous(b *testing.B) {
	var last *experiments.Table3Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table3(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	row := last.Rows[0] // first machine, RHVD
	def, adap := row.Cells[core.Default], row.Cells[core.Adaptive]
	b.ReportMetric(metrics.ImprovementPct(def.ExecHours, adap.ExecHours), "exec_improv_%")
	b.ReportMetric(metrics.ImprovementPct(def.WaitHours, adap.WaitHours), "wait_improv_%")
}

// BenchmarkFigure6Mixes regenerates Figure 6 (compute/communication mixes
// A–E). Reported metric: adaptive exec reduction for the most
// communication-heavy RHVD set (C).
func BenchmarkFigure6Mixes(b *testing.B) {
	var last *experiments.Figure6Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure6(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		if p.Set == "C" {
			b.ReportMetric(p.ReductionPct[core.Adaptive], "setC_adaptive_%")
		}
		if p.Set == "A" {
			b.ReportMetric(p.ReductionPct[core.Adaptive], "setA_adaptive_%")
		}
	}
}

// BenchmarkTable4Individual regenerates Table 4 (individual runs from an
// identical cluster state). Reported metrics: average % improvement for
// greedy and adaptive (RHVD row).
func BenchmarkTable4Individual(b *testing.B) {
	var last *experiments.Table4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table4(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	row := last.Rows[0]
	b.ReportMetric(row.AvgImprovementPct[core.Greedy], "greedy_%")
	b.ReportMetric(row.AvgImprovementPct[core.Adaptive], "adaptive_%")
}

// BenchmarkFigure7ContinuousVsIndividual regenerates Figure 7. Reported
// metrics: maximum per-job exec reduction in each methodology (paper: 70%
// continuous, 15% individual for Theta/RD).
func BenchmarkFigure7ContinuousVsIndividual(b *testing.B) {
	var cont, ind float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure7(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		cont, ind = res.MaxReductionPct()
	}
	b.ReportMetric(cont, "max_continuous_%")
	b.ReportMetric(ind, "max_individual_%")
}

// BenchmarkFigure8CommCost regenerates Figure 8 (communication cost by
// node range, binomial). Reported metrics: average cost reduction of
// greedy and balanced vs default (paper: ~3.4% and ~11%).
func BenchmarkFigure8CommCost(b *testing.B) {
	var last *experiments.Figure8Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure8(benchOpts(), collective.Binomial)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	s := last.Series[0]
	b.ReportMetric(s.AvgReductionPct[core.Greedy], "greedy_cost_%")
	b.ReportMetric(s.AvgReductionPct[core.Balanced], "balanced_cost_%")
}

// BenchmarkFigure9TurnaroundNodeHours regenerates Figure 9 (turnaround and
// node-hours vs % of communication-intensive jobs). Reported metrics:
// adaptive turnaround improvement at 30% and 90% comm jobs (the paper's
// gain grows with the communication share).
func BenchmarkFigure9TurnaroundNodeHours(b *testing.B) {
	var last *experiments.Figure9Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Figure9(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for _, p := range last.Points {
		def := p.AvgTurnaroundHours[core.Default]
		imp := metrics.ImprovementPct(def, p.AvgTurnaroundHours[core.Adaptive])
		switch p.CommPct {
		case 30:
			b.ReportMetric(imp, "tat30_%")
		case 90:
			b.ReportMetric(imp, "tat90_%")
		}
	}
}

// ---------------------------------------------------------------- ablations

func benchTaggedTrace(pattern collective.Pattern) workload.Trace {
	return workload.Theta.Synthesize(200, 1).
		MustTag(0.9, collective.SinglePattern(pattern, 0.7), 18)
}

// BenchmarkAblationBalancedNoPow2 compares balanced with and without the
// power-of-two constraint (the constraint is the paper's §4.2 core idea).
// Reported metric: extra exec % saved by the constraint.
func BenchmarkAblationBalancedNoPow2(b *testing.B) {
	topo := workload.Theta.NewTopology()
	trace := benchTaggedTrace(collective.RHVD)
	var with, without float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Balanced}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.BalancedNoPow2}, trace)
		if err != nil {
			b.Fatal(err)
		}
		with, without = r1.Summary.TotalExecHours, r2.Summary.TotalExecHours
	}
	b.ReportMetric(metrics.ImprovementPct(without, with), "pow2_gain_%")
}

// BenchmarkAblationDistanceOnlyCost compares the full effective-hops cost
// (Eq. 5) against a contention-blind distance-only model. Reported metric:
// exec hours difference in percent (how much the contention factor
// contributes to the runtime model).
func BenchmarkAblationDistanceOnlyCost(b *testing.B) {
	topo := workload.Theta.NewTopology()
	trace := benchTaggedTrace(collective.RHVD)
	var full, distOnly float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Adaptive}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{
			Topology: topo, Algorithm: core.Adaptive, CostMode: costmodel.ModeDistanceOnly,
		}, trace)
		if err != nil {
			b.Fatal(err)
		}
		full, distOnly = r1.Summary.TotalExecHours, r2.Summary.TotalExecHours
	}
	b.ReportMetric(full, "exec_h_full")
	b.ReportMetric(distOnly, "exec_h_distonly")
}

// BenchmarkAblationNoBackfill quantifies EASY backfilling's wait-time
// contribution under the adaptive algorithm.
func BenchmarkAblationNoBackfill(b *testing.B) {
	topo := workload.Theta.NewTopology()
	trace := benchTaggedTrace(collective.RD)
	var withBF, withoutBF float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Adaptive}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{
			Topology: topo, Algorithm: core.Adaptive, DisableBackfill: true,
		}, trace)
		if err != nil {
			b.Fatal(err)
		}
		withBF, withoutBF = r1.Summary.TotalWaitHours, r2.Summary.TotalWaitHours
	}
	b.ReportMetric(withBF, "wait_h_easy")
	b.ReportMetric(withoutBF, "wait_h_fifo")
}

// BenchmarkAblationRingPattern exercises the §7 future-work ring pattern
// end to end: exec improvement of adaptive over default when the dominant
// collective is a ring.
func BenchmarkAblationRingPattern(b *testing.B) {
	topo := workload.Theta.NewTopology()
	trace := benchTaggedTrace(collective.Ring)
	var def, adap float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Default}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Adaptive}, trace)
		if err != nil {
			b.Fatal(err)
		}
		def, adap = r1.Summary.TotalExecHours, r2.Summary.TotalExecHours
	}
	b.ReportMetric(metrics.ImprovementPct(def, adap), "ring_improv_%")
}

// BenchmarkAblationRankRemap quantifies the §7 process-mapping extension:
// exec hours with and without post-allocation rank remapping under the
// default allocator (remapping rescues poor placements).
func BenchmarkAblationRankRemap(b *testing.B) {
	topo := workload.Theta.NewTopology()
	trace := benchTaggedTrace(collective.RD)
	var plain, remapped float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Default}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{
			Topology: topo, Algorithm: core.Default, RankRemap: true,
		}, trace)
		if err != nil {
			b.Fatal(err)
		}
		plain, remapped = r1.Summary.TotalExecHours, r2.Summary.TotalExecHours
	}
	b.ReportMetric(metrics.ImprovementPct(plain, remapped), "remap_gain_%")
}

// BenchmarkAblationQueuePolicy compares FIFO (the paper's setup) against
// SJF ordering under the adaptive allocator. Reported metrics: average
// wait hours per policy.
func BenchmarkAblationQueuePolicy(b *testing.B) {
	topo := workload.Theta.NewTopology()
	// A longer trace than the other ablations: queues must actually form
	// for the policy to matter.
	trace := workload.Theta.Synthesize(700, 1).
		MustTag(0.9, collective.SinglePattern(collective.RHVD, 0.7), 18)
	var fifo, sjf float64
	for i := 0; i < b.N; i++ {
		r1, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Adaptive}, trace)
		if err != nil {
			b.Fatal(err)
		}
		r2, err := sim.RunContinuous(sim.Config{
			Topology: topo, Algorithm: core.Adaptive, Policy: sim.SJF,
		}, trace)
		if err != nil {
			b.Fatal(err)
		}
		fifo, sjf = r1.Summary.AvgWaitHours, r2.Summary.AvgWaitHours
	}
	b.ReportMetric(fifo, "wait_h_fifo")
	b.ReportMetric(sjf, "wait_h_sjf")
}

// BenchmarkEndToEndAdaptiveMira measures raw simulator throughput on the
// largest machine (49,152 nodes) — the engineering headroom behind the
// "negligible overhead" claim of §5.2.
func BenchmarkEndToEndAdaptiveMira(b *testing.B) {
	topo := workload.Mira.NewTopology()
	trace := workload.Mira.Synthesize(200, 1).
		MustTag(0.9, collective.SinglePattern(collective.RHVD, 0.7), 18)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: core.Adaptive}, trace); err != nil {
			b.Fatal(err)
		}
	}
}
