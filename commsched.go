// Package commsched is a from-scratch Go reproduction of
// "Communication-aware Job Scheduling using SLURM" (Mishra, Agrawal,
// Malakar — ICPP Workshops 2020). It provides:
//
//   - the paper's three node allocation algorithms (greedy, balanced,
//     adaptive) plus SLURM's default topology/tree best-fit baseline;
//   - the effective-hops communication cost model (contention factor,
//     distance, Eq. 2–7);
//   - step-structured models of the parallel algorithms behind MPI
//     collectives (recursive doubling, recursive halving with vector
//     doubling, binomial tree, ring);
//   - a discrete-event cluster simulator with FIFO + EASY backfilling that
//     replays job traces the way the paper's SLURM frontend emulation does;
//   - synthetic Intrepid/Theta/Mira workloads and an SWF reader for real
//     logs;
//   - a flow-level max-min network simulator reproducing the paper's
//     switch-contention motivation experiment (Figure 1).
//
// This package is the public facade: it re-exports the library's types via
// aliases and offers one-call helpers for the common flows. The
// implementation lives in the internal/ packages, one per subsystem (see
// DESIGN.md for the system inventory).
//
// # Quick start
//
//	topo := commsched.ThetaTopology()
//	trace := commsched.SynthesizeTrace(commsched.ThetaPreset, 1000, 42)
//	trace, _ = trace.Tag(0.9, commsched.SingleCollective(commsched.RHVD, 0.7), 1)
//	results, _ := commsched.Compare(topo, trace, commsched.Algorithms)
//	for alg, res := range results {
//		fmt.Printf("%v: %.0f exec hours, %.0f wait hours\n",
//			alg, res.Summary.TotalExecHours, res.Summary.TotalWaitHours)
//	}
package commsched

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/collective"
	"repro/internal/core"
	"repro/internal/costmodel"
	"repro/internal/daemon"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sim"
	"repro/internal/swf"
	"repro/internal/topology"
	"repro/internal/workload"
)

// Core type aliases. Aliases (not definitions) so values flow freely
// between the facade and the subsystem packages.
type (
	// Topology is a tree/fat-tree interconnect.
	Topology = topology.Topology
	// Switch is one switch of a Topology.
	Switch = topology.Switch
	// TopologySpec parameterises generated trees.
	TopologySpec = topology.Spec

	// ClusterState tracks node allocations and per-leaf contention counters.
	ClusterState = cluster.State
	// JobID identifies a job.
	JobID = cluster.JobID
	// JobClass tags jobs compute- or communication-intensive.
	JobClass = cluster.Class

	// Algorithm selects a node-allocation policy.
	Algorithm = core.Algorithm
	// Selector is a node-selection policy instance.
	Selector = core.Selector
	// Request is one allocation request.
	Request = core.Request

	// Pattern is a collective communication algorithm.
	Pattern = collective.Pattern
	// Mix divides a job's runtime between compute and collective patterns.
	Mix = collective.Mix
	// MixComponent is one communication phase of a Mix.
	MixComponent = collective.Component
	// Step is one stage of a collective schedule.
	Step = collective.Step

	// CostMode selects the communication cost function.
	CostMode = costmodel.Mode

	// Trace is an ordered job log.
	Trace = workload.Trace
	// TraceJob is one job of a Trace.
	TraceJob = workload.Job
	// MachinePreset describes one of the evaluation machines.
	MachinePreset = workload.Preset

	// SimConfig parameterises a continuous simulation run.
	SimConfig = sim.Config
	// QueuePolicy orders the waiting queue (FIFO, SJF, WidestFirst).
	QueuePolicy = sim.Policy
	// SimResult is the outcome of a continuous run.
	SimResult = sim.Result
	// IndividualConfig parameterises individual runs.
	IndividualConfig = sim.IndividualConfig
	// IndividualResult is one job's outcome across algorithms.
	IndividualResult = sim.IndividualResult

	// JobResult is one job's metrics in one run.
	JobResult = metrics.JobResult
	// Summary aggregates a run.
	Summary = metrics.Summary

	// Network is a flow-level network simulator over a Topology.
	Network = netsim.Network
	// NetworkOptions sets link bandwidths.
	NetworkOptions = netsim.Options
	// CollectiveJob is a job repeatedly executing a collective on a Network.
	CollectiveJob = netsim.CollectiveJob
	// JobTiming reports a CollectiveJob's execution.
	JobTiming = netsim.JobTiming

	// SWFLog is a parsed Standard Workload Format file.
	SWFLog = swf.Log
	// SWFJob is one SWF record.
	SWFJob = swf.Job

	// Daemon is the online slurmctld-style scheduling service.
	Daemon = daemon.Daemon
	// DaemonConfig parameterises a Daemon.
	DaemonConfig = daemon.Config
	// DaemonServer serves a Daemon over the JSON-lines TCP protocol.
	DaemonServer = daemon.Server
	// DaemonClient is the wire client for a served Daemon.
	DaemonClient = daemon.Client
	// DaemonRequest is one protocol request.
	DaemonRequest = daemon.Request
	// DaemonJobInfo describes a job in protocol responses.
	DaemonJobInfo = daemon.JobInfo
)

// Job classes.
const (
	ComputeIntensive = cluster.ComputeIntensive
	CommIntensive    = cluster.CommIntensive
)

// Allocation algorithms.
const (
	Default        = core.Default
	Greedy         = core.Greedy
	Balanced       = core.Balanced
	Adaptive       = core.Adaptive
	BalancedNoPow2 = core.BalancedNoPow2
)

// Collective patterns.
const (
	RD       = collective.RD
	RHVD     = collective.RHVD
	Binomial = collective.Binomial
	Ring     = collective.Ring
	Stencil  = collective.Stencil
	Alltoall = collective.Alltoall
)

// Cost modes.
const (
	ModeEffectiveHops = costmodel.ModeEffectiveHops
	ModeDistanceOnly  = costmodel.ModeDistanceOnly
	ModeHopBytes      = costmodel.ModeHopBytes
)

// Queue policies.
const (
	FIFO        = sim.FIFO
	SJF         = sim.SJF
	WidestFirst = sim.WidestFirst
)

// Algorithms lists the four algorithms the paper compares, in order.
var Algorithms = core.Algorithms

// Patterns lists the paper's evaluated collective patterns.
var Patterns = collective.Patterns

// Machine presets for the evaluation workloads.
var (
	IntrepidPreset = workload.Intrepid
	ThetaPreset    = workload.Theta
	MiraPreset     = workload.Mira
)

// ExperimentSets are the §6.2 compute/communication mixes A–E.
var ExperimentSets = collective.ExperimentSets

// ParseAlgorithm converts an algorithm name ("default", "greedy",
// "balanced", "adaptive").
func ParseAlgorithm(s string) (Algorithm, error) { return core.ParseAlgorithm(s) }

// ParsePattern converts a pattern name ("rd", "rhvd", "binomial", "ring").
func ParsePattern(s string) (Pattern, error) { return collective.ParsePattern(s) }

// ParseCostMode converts a cost mode name.
func ParseCostMode(s string) (CostMode, error) { return costmodel.ParseMode(s) }

// ParseQueuePolicy converts a queue policy name ("fifo", "sjf", "widest").
func ParseQueuePolicy(s string) (QueuePolicy, error) { return sim.ParsePolicy(s) }

// NewSelector builds the Selector for an Algorithm.
func NewSelector(a Algorithm) (Selector, error) { return core.New(a) }

// NewCluster returns an empty allocation state over the topology.
func NewCluster(topo *Topology) *ClusterState { return cluster.New(topo) }

// LoadTopology parses a SLURM topology.conf file from disk.
func LoadTopology(path string) (*Topology, error) { return topology.LoadConfig(path) }

// ParseTopology parses topology.conf content from a reader.
func ParseTopology(r io.Reader) (*Topology, error) { return topology.ParseConfig(r) }

// GenerateTopology builds a regular tree from a spec.
func GenerateTopology(spec TopologySpec) (*Topology, error) { return topology.Generate(spec) }

// The evaluation topologies.
func ThetaTopology() *Topology        { return topology.Theta() }
func CoriTopology() *Topology         { return topology.Cori() }
func IntrepidTopology() *Topology     { return topology.Intrepid() }
func MiraTopology() *Topology         { return topology.Mira() }
func PaperExampleTopology() *Topology { return topology.PaperExample() }
func DepartmentalTopology() *Topology { return topology.Departmental() }

// SynthesizeTrace generates a seeded trace matching a machine preset.
func SynthesizeTrace(p MachinePreset, jobs int, seed int64) Trace {
	return p.Synthesize(jobs, seed)
}

// SingleCollective builds a Mix spending commFrac of runtime in one
// pattern.
func SingleCollective(p Pattern, commFrac float64) Mix {
	return collective.SinglePattern(p, commFrac)
}

// LoadSWF reads a Standard Workload Format log from disk.
func LoadSWF(path string) (*SWFLog, error) { return swf.Load(path) }

// ParseSWF reads a Standard Workload Format log from a reader.
func ParseSWF(r io.Reader) (*SWFLog, error) { return swf.Read(r) }

// TraceFromSWF converts an SWF log into a Trace (see workload.FromSWF).
func TraceFromSWF(log *SWFLog, name string, machineNodes, maxJobs int) Trace {
	return workload.FromSWF(log, name, machineNodes, maxJobs)
}

// Run replays the trace under one algorithm (continuous run).
func Run(cfg SimConfig, trace Trace) (*SimResult, error) {
	return sim.RunContinuous(cfg, trace)
}

// Compare replays the trace under each algorithm from identical initial
// conditions and returns the per-algorithm results.
func Compare(topo *Topology, trace Trace, algs []Algorithm) (map[Algorithm]*SimResult, error) {
	out := make(map[Algorithm]*SimResult, len(algs))
	for _, a := range algs {
		res, err := sim.RunContinuous(sim.Config{Topology: topo, Algorithm: a}, trace)
		if err != nil {
			return nil, err
		}
		out[a] = res
	}
	return out, nil
}

// RunIndividual evaluates the selected jobs one at a time from an identical
// partially occupied cluster state under each algorithm (the paper's
// individual runs, §6.3).
func RunIndividual(cfg IndividualConfig, trace Trace, jobIdx []int, algs []Algorithm) ([]IndividualResult, error) {
	return sim.RunIndividual(cfg, trace, jobIdx, algs)
}

// ValidateResult independently audits a continuous run against its trace:
// per-job time consistency, dependency ordering, and a sweep-line check
// that the machine was never oversubscribed.
func ValidateResult(res *SimResult, trace Trace) error {
	return sim.ValidateResult(res, trace)
}

// ValidateResultConfig is ValidateResult plus configuration-aware audits:
// queue-policy ordering with backfilling disabled, and EASY backfill
// legality with it enabled.
func ValidateResultConfig(res *SimResult, trace Trace, cfg SimConfig) error {
	return sim.ValidateResultConfig(res, trace, cfg)
}

// RunValidated is Run followed by ValidateResultConfig on the result.
func RunValidated(cfg SimConfig, trace Trace) (*SimResult, error) {
	return sim.RunContinuousValidated(cfg, trace)
}

// NewDaemon starts an online scheduling daemon (stop it with Close).
func NewDaemon(cfg DaemonConfig) (*Daemon, error) { return daemon.New(cfg) }

// NewDaemonServer wraps a daemon for serving over TCP.
func NewDaemonServer(d *Daemon) *DaemonServer { return daemon.NewServer(d) }

// DialDaemon connects a wire client to a served daemon.
func DialDaemon(addr string) (*DaemonClient, error) { return daemon.Dial(addr) }

// NewNetwork builds a flow-level network simulator over the topology.
func NewNetwork(topo *Topology, opts NetworkOptions) *Network {
	return netsim.New(topo, opts)
}

// Contention returns the paper's contention factor C(i,j) (Eq. 2–3) for
// two nodes under the current cluster state.
func Contention(st *ClusterState, i, j int) float64 { return costmodel.Contention(st, i, j) }

// EffectiveHops returns Hops(i,j) = d(i,j)·(1+C(i,j)) (Eq. 5).
func EffectiveHops(st *ClusterState, i, j int) float64 { return costmodel.Hops(st, i, j) }

// AllocationCost evaluates Eq. 6 for a prospective placement: the job is
// tentatively allocated, costed with the pattern's schedule, and rolled
// back.
func AllocationCost(st *ClusterState, job JobID, class JobClass, nodes []int, p Pattern) (float64, error) {
	return costmodel.CandidateCost(st, job, class, nodes, p)
}

// ImprovementPct returns the percentage improvement of value over base
// (positive = better), as reported in the paper's tables.
func ImprovementPct(base, value float64) float64 { return metrics.ImprovementPct(base, value) }

// Pearson returns the correlation coefficient used in the Figure 1 study.
func Pearson(x, y []float64) float64 { return metrics.Pearson(x, y) }
